"""Per-query cost accounting.

CEPR's run-based evaluation model makes cost *observable*: every event a
query sees either creates runs, extends them, kills them, or is elided by
the shared-execution index — and each of those has a price.  A
:class:`CostAccount` condenses one registered query's matcher statistics,
shared-index hit/miss split, and measured CPU time into a single
comparable record, so ``cepr top`` can rank queries by what they actually
cost and the future load-shedding controller can pick victims.

Accounts are **views, not state**: :meth:`CostAccount.from_query` reads
the live counters the engine already maintains, so there is nothing to
retire on ``unregister_query`` beyond the handles the engine already
drops — a ghost query cannot linger in an account listing because the
listing is rebuilt from ``engine.queries()`` on every call.

Merging is exact for every counter (:meth:`CostAccount.merge` sums), and
for CPU time it sums measured seconds per shard — the property suite pins
counter-exactness across shard splits at K ∈ {1, 2, 4, 8}.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.runtime.query import RegisteredQuery


@dataclass
class CostAccount:
    """Condensed cost record for one registered query.

    ``cpu_seconds`` is the per-stage profile total when profiling is on
    (the default), else the whole-pipeline latency total — both measure
    time spent inside this query's operator chain.
    """

    query: str
    events_routed: int = 0
    runs_created: int = 0
    runs_extended: int = 0
    runs_killed: int = 0
    runs_pruned: int = 0
    shared_hits: int = 0
    shared_misses: int = 0
    matches: int = 0
    emissions: int = 0
    evaluation_errors: int = 0
    cpu_seconds: float = 0.0
    #: shards folded into this account (1 for a single engine).
    parts: int = field(default=1)

    # -- derived ratios ----------------------------------------------------------

    @property
    def predicate_evals(self) -> int:
        """Shared-index consultations (hits + misses)."""
        return self.shared_hits + self.shared_misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of predicate consultations answered from the memo."""
        evals = self.predicate_evals
        return self.shared_hits / evals if evals else 0.0

    @property
    def prune_ratio(self) -> float:
        """Fraction of created runs the score bound pruned before completion."""
        return self.runs_pruned / self.runs_created if self.runs_created else 0.0

    @property
    def cpu_per_event_us(self) -> float:
        """Mean CPU microseconds per routed event."""
        if not self.events_routed:
            return 0.0
        return self.cpu_seconds / self.events_routed * 1e6

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_query(cls, registered: "RegisteredQuery") -> "CostAccount":
        """Build an account from one registered query's live counters."""
        stats = registered.matcher.stats
        metrics = registered.metrics
        if registered.profile is not None:
            cpu = registered.profile.total_seconds
        else:
            cpu = metrics.latency.total
        return cls(
            query=registered.name,
            events_routed=metrics.events_routed,
            runs_created=stats.runs_created,
            runs_extended=stats.runs_extended,
            runs_killed=(
                stats.runs_killed_strict
                + stats.runs_killed_negation
                + stats.runs_tripped
                + stats.runs_expired
            ),
            runs_pruned=stats.runs_pruned,
            shared_hits=stats.shared_hits,
            shared_misses=stats.shared_misses,
            matches=metrics.matches,
            emissions=metrics.emissions,
            evaluation_errors=stats.evaluation_errors,
            cpu_seconds=cpu,
        )

    @classmethod
    def merge(cls, parts: Iterable["CostAccount"]) -> "CostAccount":
        """Fold shard-level accounts for one query into a fleet view.

        Every counter sums exactly; ``cpu_seconds`` sums measured time
        across shards.  All parts must describe the same query.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merge() needs at least one account")
        names = {part.query for part in parts}
        if len(names) != 1:
            raise ValueError(f"merge() across different queries: {sorted(names)}")
        total = cls(query=parts[0].query, parts=0)
        for part in parts:
            for spec in fields(cls):
                if spec.name == "query":
                    continue
                setattr(
                    total,
                    spec.name,
                    getattr(total, spec.name) + getattr(part, spec.name),
                )
        return total

    # -- rendering ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe record (counters plus the derived ratios)."""
        doc: dict[str, Any] = {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }
        doc["predicate_evals"] = self.predicate_evals
        doc["hit_ratio"] = round(self.hit_ratio, 6)
        doc["prune_ratio"] = round(self.prune_ratio, 6)
        doc["cpu_per_event_us"] = round(self.cpu_per_event_us, 3)
        return doc

    def describe(self) -> str:
        """One-line rendering for ``explain()`` and the monitor."""
        return (
            f"cpu={self.cpu_seconds * 1e3:.2f}ms "
            f"({self.cpu_per_event_us:.1f}us/ev) "
            f"runs +{self.runs_created}/~{self.runs_extended}"
            f"/-{self.runs_killed} pruned={self.runs_pruned}"
            f"({self.prune_ratio * 100:.0f}%) "
            f"shared {self.shared_hits}h/{self.shared_misses}m"
            f"({self.hit_ratio * 100:.0f}%)"
        )


def rank_accounts(accounts: Iterable[CostAccount]) -> list[CostAccount]:
    """Accounts ordered most-expensive-first (CPU, then routed events).

    Ties break on the query name so the ranking is deterministic — the
    ``cepr top`` view must not flicker between refreshes on equal costs.
    """
    return sorted(
        accounts,
        key=lambda acc: (-acc.cpu_seconds, -acc.events_routed, acc.query),
    )
