"""Structured logging for the CLI and the runtime.

Everything operational the system says out-of-band (analyzer startup
warnings, solo-fallback downgrades, watch-mode notes) goes through the
standard :mod:`logging` tree under the ``repro.*`` namespace instead of
bare ``print(..., file=sys.stderr)``.  :func:`configure_logging` installs
one handler on the ``repro`` root logger rendering either human text
(``warning: message``) or JSON lines (``{"level": "warning", ...}``).

Two deliberate choices:

* The default handler resolves ``sys.stderr`` **at emit time**, not at
  configuration time, so stream redirection (tests, daemons re-opening
  descriptors) is always honoured.
* Configuration is idempotent and replaceable: calling
  :func:`configure_logging` again swaps the handler/format instead of
  stacking duplicates — the CLI reconfigures per invocation.

Library use without configuration keeps stock logging behaviour
(records propagate to the root logger), so embedding applications stay in
control of their own logging setup.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

_ROOT_LOGGER = "repro"
_HANDLER_FLAG = "_repro_observability_handler"


def get_logger(name: str) -> logging.Logger:
    """The ``repro.*`` logger for a module (qualifies bare names)."""
    if name != _ROOT_LOGGER and not name.startswith(_ROOT_LOGGER + "."):
        name = f"{_ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler that re-reads ``sys.stderr`` on every emit."""

    def __init__(self) -> None:
        super().__init__(stream=sys.stderr)

    @property
    def stream(self) -> TextIO:  # type: ignore[override]
        return sys.stderr

    @stream.setter
    def stream(self, value: TextIO) -> None:  # the base __init__ assigns it
        pass


class TextFormatter(logging.Formatter):
    """``level: message`` lines, with structured extras appended."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        fields = getattr(record, "data", None)
        if fields:
            rendered = " ".join(f"{key}={value}" for key, value in fields.items())
            message = f"{message} ({rendered})"
        line = f"{record.levelname.lower()}: {message}"
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class JSONFormatter(logging.Formatter):
    """One JSON object per record: level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "data", None)
        if fields:
            payload["data"] = fields
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_logging(
    level: int | str = logging.WARNING,
    json_lines: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install (or replace) the ``repro`` log handler.

    Parameters
    ----------
    level:
        Threshold for the ``repro`` logger tree (name or numeric).
    json_lines:
        Render records as JSON objects instead of ``level: message`` text.
    stream:
        Explicit output stream; default follows the *current*
        ``sys.stderr`` on every record.
    """
    logger = logging.getLogger(_ROOT_LOGGER)
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler: logging.StreamHandler = (
        logging.StreamHandler(stream) if stream is not None else _DynamicStderrHandler()
    )
    handler.setFormatter(JSONFormatter() if json_lines else TextFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    # Propagation stays on: the root logger has no handlers in a normal
    # CLI process (so nothing double-prints), and capturing harnesses
    # (pytest's caplog) listen at the root.
    return logger


def reset_logging() -> None:
    """Remove our handler and reset the tree's level (tests, embedders)."""
    logger = logging.getLogger(_ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
