"""Span tracing and emission provenance for the match pipeline.

A :class:`Tracer` collects :class:`Span` records emitted by the engine's
hot paths — one per pipeline step::

    route → nfa_transition → run_create / run_extend / run_kill
          → match → rank → emit

Tracing is **off by default** and globally switched: components attach a
tracer only while :func:`tracing_enabled` is true (or the engine is asked
explicitly), so the disabled cost on the hot path is a handful of
``tracer is None`` checks.  Spans live in a bounded ring buffer —
long traced runs keep constant memory and the newest history.

Provenance answers the user question *"why is this result #1?"*:
:func:`build_emission_trace` folds an emission's matches together with the
span history into an :class:`EmissionTrace` — which events fed each match,
which rank keys scored it, and how many runs were created, pruned, or
killed en route inside the match's partition.  Exposed as
``CEPREngine.trace(emission)`` and ``cepr trace``.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.language.semantics import AnalyzedQuery
    from repro.ranking.emission import Emission

# ---------------------------------------------------------------------------
# global switch
# ---------------------------------------------------------------------------

_ENABLED = False


def enable_tracing() -> None:
    """Turn the module-level tracing switch on (new engines attach tracers)."""
    global _ENABLED
    _ENABLED = True


def disable_tracing() -> None:
    """Turn the module-level tracing switch off."""
    global _ENABLED
    _ENABLED = False


def tracing_enabled() -> bool:
    """Whether the module-level tracing switch is on."""
    return _ENABLED


@contextmanager
def traced() -> Iterator[None]:
    """Context manager: enable tracing inside the block, restore after."""
    previous = _ENABLED
    enable_tracing()
    try:
        yield
    finally:
        if not previous:
            disable_tracing()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


class SpanKind(Enum):
    """Pipeline step a span records."""

    #: an event was routed to a query's operator chain.
    ROUTE = "route"
    #: an automaton transition consumed an event (bind / Kleene take).
    NFA_TRANSITION = "nfa_transition"
    #: a fresh run started at stage 0.
    RUN_CREATE = "run_create"
    #: a live run was extended by an event.
    RUN_EXTEND = "run_extend"
    #: a run died (see ``detail["reason"]``: expired / strict / negation /
    #: pruned / epoch).
    RUN_KILL = "run_kill"
    #: a run completed into a match (or was confirmed from pending).
    MATCH = "match"
    #: a match was scored by the RANK BY keys.
    RANK = "rank"
    #: an emission was released to the sinks.
    EMIT = "emit"


@dataclass(frozen=True, slots=True)
class Span:
    """One traced pipeline step at a stream point."""

    kind: SpanKind
    seq: int
    ts: float
    query: str | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        extras = " ".join(f"{k}={v!r}" for k, v in self.detail.items())
        head = f"{self.kind.value} seq={self.seq} t={self.ts:g}"
        if self.query:
            head += f" query={self.query}"
        return f"{head} {extras}".rstrip()


class Tracer:
    """Bounded collector of :class:`Span` records.

    Parameters
    ----------
    capacity:
        Ring-buffer bound; the oldest spans are evicted first.  Evictions
        are counted in :attr:`dropped` so a truncated provenance can say
        so instead of silently under-reporting.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.recorded = 0

    def record(
        self,
        kind: SpanKind,
        seq: int,
        ts: float,
        query: str | None = None,
        **detail: Any,
    ) -> None:
        """Append one span (hot-path entry point; callers guard on ``None``)."""
        self.recorded += 1
        self._spans.append(Span(kind, seq, ts, query, detail))

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring buffer."""
        return self.recorded - len(self._spans)

    def spans(
        self, kind: SpanKind | None = None, query: str | None = None
    ) -> list[Span]:
        """Recorded spans, optionally filtered by kind and/or query."""
        return [
            span
            for span in self._spans
            if (kind is None or span.kind is kind)
            and (query is None or span.query == query)
        ]

    def counts_by_kind(self, query: str | None = None) -> dict[str, int]:
        """``{span kind value: count}`` over the retained buffer."""
        tally: _TallyCounter[str] = _TallyCounter()
        for span in self._spans:
            if query is None or span.query == query:
                tally[span.kind.value] += 1
        return dict(tally)

    def clear(self) -> None:
        self._spans.clear()
        self.recorded = 0

    # -- provenance scans -------------------------------------------------------

    def partition_activity(
        self,
        query: str,
        partition: tuple[Any, ...],
        first_seq: int,
        last_seq: int,
    ) -> dict[str, int]:
        """Run-lifecycle tallies inside one partition over a seq interval.

        Returns counts of ``run_create`` / ``run_extend`` spans and of each
        ``run_kill`` reason (``killed_<reason>``) whose span lies in
        ``[first_seq, last_seq]`` for the given partition — the competition
        a match survived on its way to emission.
        """
        tally: _TallyCounter[str] = _TallyCounter()
        for span in self._spans:
            if span.query != query or not first_seq <= span.seq <= last_seq:
                continue
            if span.detail.get("partition") != partition:
                continue
            if span.kind is SpanKind.RUN_KILL:
                tally[f"killed_{span.detail.get('reason', 'unknown')}"] += 1
            elif span.kind in (SpanKind.RUN_CREATE, SpanKind.RUN_EXTEND):
                tally[span.kind.value] += 1
        return dict(tally)


# ---------------------------------------------------------------------------
# provenance
# ---------------------------------------------------------------------------


@dataclass
class MatchProvenance:
    """Why one match appeared (at its rank) in an emission."""

    position: int
    detection_index: int
    partition_key: tuple[Any, ...]
    #: ``(variable, event_type, seq, ts)`` for every event that fed the match.
    events: list[tuple[str, str, int, float]]
    #: ``(rank expression text, direction, value)`` per RANK BY key.
    rank_keys: list[tuple[str, str, Any]]
    #: run-lifecycle tallies in the match's partition over its seq span.
    competition: dict[str, int]

    def describe(self) -> str:
        lines = [f"#{self.position} detection={self.detection_index}"]
        if self.partition_key:
            lines[0] += f" partition={self.partition_key!r}"
        lines.append("  events:")
        for variable, event_type, seq, ts in self.events:
            lines.append(f"    {variable}: {event_type} seq={seq} t={ts:g}")
        if self.rank_keys:
            lines.append("  rank keys:")
            for expr, direction, value in self.rank_keys:
                lines.append(f"    {expr} {direction} = {value!r}")
        if self.competition:
            summary = " ".join(
                f"{key}={value}" for key, value in sorted(self.competition.items())
            )
            lines.append(f"  en route: {summary}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "position": self.position,
            "detection_index": self.detection_index,
            "partition_key": list(self.partition_key),
            "events": [
                {"variable": var, "type": etype, "seq": seq, "ts": ts}
                for var, etype, seq, ts in self.events
            ],
            "rank_keys": [
                {"expr": expr, "direction": direction, "value": value}
                for expr, direction, value in self.rank_keys
            ],
            "competition": dict(self.competition),
        }


@dataclass
class EmissionTrace:
    """Full provenance of one emission (see :func:`build_emission_trace`)."""

    query: str | None
    kind: str
    revision: int
    at_seq: int
    at_ts: float
    epoch: int | None
    matches: list[MatchProvenance]
    #: span tallies for the whole query over the retained trace buffer.
    span_counts: dict[str, int]
    #: spans evicted from the ring buffer (provenance may be truncated).
    spans_dropped: int = 0

    def describe(self) -> str:
        head = (
            f"emission {self.kind} rev={self.revision} seq={self.at_seq} "
            f"t={self.at_ts:g}"
        )
        if self.epoch is not None:
            head += f" epoch={self.epoch}"
        if self.query:
            head += f" query={self.query}"
        lines = [head, f"{len(self.matches)} ranked match(es)"]
        for provenance in self.matches:
            lines.append(provenance.describe())
        if self.span_counts:
            summary = " ".join(
                f"{key}={value}" for key, value in sorted(self.span_counts.items())
            )
            lines.append(f"query span totals: {summary}")
        if self.spans_dropped:
            lines.append(
                f"(trace buffer overflowed; {self.spans_dropped} oldest spans "
                "dropped — provenance may under-count)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "kind": self.kind,
            "revision": self.revision,
            "at_seq": self.at_seq,
            "at_ts": self.at_ts,
            "epoch": self.epoch,
            "matches": [provenance.to_dict() for provenance in self.matches],
            "span_counts": dict(self.span_counts),
            "spans_dropped": self.spans_dropped,
        }


def build_emission_trace(
    emission: "Emission",
    analyzed: "AnalyzedQuery | None" = None,
    tracer: Tracer | None = None,
    query: str | None = None,
) -> EmissionTrace:
    """Reconstruct the provenance of ``emission``.

    Works degraded without a tracer (events and rank keys still come from
    the matches themselves; only the run-lifecycle competition tallies need
    span history).
    """
    from repro.events.event import Event
    from repro.language.printer import format_expr

    if query is None and emission.ranking:
        query = emission.ranking[0].query_name

    rank_specs: list[tuple[str, str]] = []
    if analyzed is not None:
        rank_specs = [
            (format_expr(key.expr), key.direction.value)
            for key in analyzed.rank_keys
        ]

    matches: list[MatchProvenance] = []
    for position, match in enumerate(emission.ranking, start=1):
        events: list[tuple[str, str, int, float]] = []
        for variable, binding in match.bindings.items():
            bound = (binding,) if isinstance(binding, Event) else binding
            for event in bound:
                events.append(
                    (variable, event.event_type, event.seq, event.timestamp)
                )
        rank_keys = [
            (expr, direction, value)
            for (expr, direction), value in zip(rank_specs, match.rank_values)
        ]
        if not rank_keys and match.rank_values:
            # no analyzed query handed in: fall back to positional keys
            rank_keys = [
                (f"key[{index}]", "?", value)
                for index, value in enumerate(match.rank_values)
            ]
        competition: dict[str, int] = {}
        if tracer is not None and query is not None:
            competition = tracer.partition_activity(
                query, match.partition_key, match.first_seq, match.last_seq
            )
        matches.append(
            MatchProvenance(
                position=position,
                detection_index=match.detection_index,
                partition_key=match.partition_key,
                events=events,
                rank_keys=rank_keys,
                competition=competition,
            )
        )

    span_counts = tracer.counts_by_kind(query) if tracer is not None else {}
    return EmissionTrace(
        query=query,
        kind=emission.kind.value,
        revision=emission.revision,
        at_seq=emission.at_seq,
        at_ts=emission.at_ts,
        epoch=emission.epoch,
        matches=matches,
        span_counts=span_counts,
        spans_dropped=tracer.dropped if tracer is not None else 0,
    )


def remote_contexts(emission: "Emission") -> list[dict[str, Any]]:
    """Transport-stamped trace contexts of the events feeding an emission.

    The serving layer stamps ``Event.trace`` with the client's HELLO/push
    context; this collects one record per bound event that carried one —
    the remote half of a stitched client-push → ranked-emission causal
    chain (``cepr trace --connect``).  Events bound by several matches
    report once, at their best (lowest) rank position.
    """
    from repro.events.event import Event

    records: list[dict[str, Any]] = []
    seen: set[int] = set()
    for position, match in enumerate(emission.ranking, start=1):
        for variable, binding in match.bindings.items():
            bound = (binding,) if isinstance(binding, Event) else binding
            for event in bound:
                if event.trace is None or id(event) in seen:
                    continue
                seen.add(id(event))
                records.append(
                    {
                        "position": position,
                        "variable": variable,
                        "type": event.event_type,
                        "seq": event.seq,
                        "ts": event.timestamp,
                        "context": dict(event.trace),
                    }
                )
    return records
