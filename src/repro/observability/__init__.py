"""End-to-end observability: tracing, metrics, profiling, logging.

This package is the engine's window into itself, built from three pillars
(all zero-dependency, all safe to import from hot paths):

* :mod:`repro.observability.tracing` — span-level tracing of the match
  pipeline (``route → nfa_transition → run_create/extend/kill → match →
  rank → emit``) plus per-emission *provenance*: which events fed a match,
  which rank keys scored it, and which runs were pruned en route.  Off by
  default; enabling it is a module-level switch so the disabled cost is a
  handful of ``is None`` checks.
* :mod:`repro.observability.registry` — a typed metrics registry
  (counters, gauges, histograms) every runtime component registers into,
  exported as a JSON snapshot or Prometheus text exposition
  (``cepr stats --prom``).
* :mod:`repro.observability.profiling` — per-query per-stage wall-time
  accounting (match vs. rank vs. emit), rendered by the monitor and
  ``explain()``.

:mod:`repro.observability.log` rounds the package out with structured
(JSON or text) logging used by the CLI and the sharded runtime.
"""

from repro.observability.log import configure_logging, get_logger
from repro.observability.profiling import StageProfile, StageTimer
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import (
    EmissionTrace,
    MatchProvenance,
    Span,
    SpanKind,
    Tracer,
    disable_tracing,
    enable_tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "EmissionTrace",
    "Gauge",
    "Histogram",
    "MatchProvenance",
    "MetricsRegistry",
    "Span",
    "SpanKind",
    "StageProfile",
    "StageTimer",
    "Tracer",
    "configure_logging",
    "disable_tracing",
    "enable_tracing",
    "get_logger",
    "tracing_enabled",
]
