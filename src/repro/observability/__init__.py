"""End-to-end observability: tracing, metrics, profiling, logging.

This package is the engine's window into itself, built from three pillars
(all zero-dependency, all safe to import from hot paths):

* :mod:`repro.observability.tracing` — span-level tracing of the match
  pipeline (``route → nfa_transition → run_create/extend/kill → match →
  rank → emit``) plus per-emission *provenance*: which events fed a match,
  which rank keys scored it, and which runs were pruned en route.  Off by
  default; enabling it is a module-level switch so the disabled cost is a
  handful of ``is None`` checks.
* :mod:`repro.observability.registry` — a typed metrics registry
  (counters, gauges, histograms) every runtime component registers into,
  exported as a JSON snapshot or Prometheus text exposition
  (``cepr stats --prom``).
* :mod:`repro.observability.profiling` — per-query per-stage wall-time
  accounting (match vs. rank vs. emit), rendered by the monitor and
  ``explain()``.

:mod:`repro.observability.log` rounds the package out with structured
(JSON or text) logging used by the CLI and the sharded runtime.

The second-generation telemetry layer adds three more pillars the
load-shedding controller and cluster mode consume directly:

* :mod:`repro.observability.cost` — per-query :class:`CostAccount`
  records (runs created/extended/killed, shared-index hit/miss split,
  prune ratio, CPU time) ranked by ``cepr top``;
* :mod:`repro.observability.pressure` — ingest-lag / queue / subscriber
  saturation samples folded into one composite score with hysteresis;
* :mod:`repro.observability.flightrec` — a byte-budgeted black-box
  flight recorder that dumps a postmortem artifact on crash, sanitizer
  trip, ``SIGUSR2``, or demand.
"""

from repro.observability.cost import CostAccount, rank_accounts
from repro.observability.flightrec import (
    FlightRecorder,
    dump_if_armed,
    install_flight_recorder,
    uninstall_flight_recorder,
)
from repro.observability.log import configure_logging, get_logger
from repro.observability.pressure import (
    PressureAssessor,
    PressureSample,
    merge_samples,
)
from repro.observability.profiling import StageProfile, StageTimer
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import (
    EmissionTrace,
    MatchProvenance,
    Span,
    SpanKind,
    Tracer,
    disable_tracing,
    enable_tracing,
    remote_contexts,
    tracing_enabled,
)

__all__ = [
    "CostAccount",
    "Counter",
    "EmissionTrace",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MatchProvenance",
    "MetricsRegistry",
    "PressureAssessor",
    "PressureSample",
    "Span",
    "SpanKind",
    "StageProfile",
    "StageTimer",
    "Tracer",
    "configure_logging",
    "disable_tracing",
    "dump_if_armed",
    "enable_tracing",
    "get_logger",
    "install_flight_recorder",
    "merge_samples",
    "rank_accounts",
    "remote_contexts",
    "tracing_enabled",
    "uninstall_flight_recorder",
]
