"""Black-box flight recorder: a bounded ring of recent telemetry.

Long runs fail in ways the logs never capture: the interesting history is
the *last few seconds* before the crash — which events were in flight,
what the counters said, which frames the server was juggling.  The
:class:`FlightRecorder` keeps exactly that: a byte-budgeted ring of
pre-encoded JSON entries (spans, frames, metric snapshots, lifecycle
marks) that costs one ``json.dumps`` per record and nothing else, and can
dump a postmortem artifact at any moment — on a crash, on a CEPRSan
``SanitizerError`` trip, on ``SIGUSR2`` in ``cepr serve``, or on demand
via ``cepr flightrec dump``.

Design constraints:

* **Allocation-light.** Entries are stored as their final encoded strings,
  so the byte budget is exact (``sum(len(entry))``) and a dump is a string
  join, not a re-serialisation of live objects.
* **Bounded.** Recording past the budget evicts the oldest entries; the
  eviction count survives into the artifact so a truncated history says so.
* **Disabled = one ``None`` check.** Components capture
  :func:`current` once at construction; when no recorder is installed the
  hot path pays a single identity comparison.

The artifact is a single JSON document (see :meth:`FlightRecorder.dump`)
written atomically (temp file + rename) into the configured directory —
by convention the checkpoint dir, so postmortems land next to the state
they describe.
"""

from __future__ import annotations

import json
import os
import time
import threading
from collections import deque
from pathlib import Path
from typing import Any

#: artifact format version (bump on incompatible schema changes).
ARTIFACT_VERSION = 1

#: artifact filename prefix (``cepr flightrec show/list`` globs on this).
ARTIFACT_PREFIX = "flightrec-"

#: default ring budget: enough for a few thousand entries without ever
#: mattering next to engine state.
DEFAULT_BYTE_BUDGET = 256 * 1024


class FlightRecorder:
    """Byte-budgeted ring buffer of encoded telemetry entries.

    Thread-safe: the engine consumer thread, shard workers, the asyncio
    loop, and signal handlers may all record concurrently.  The lock is a
    raw ``threading.Lock`` by necessity — :mod:`repro.observability` sits
    below :mod:`repro.sanitize` in the import graph, so it cannot use
    ``tracked_lock`` without a cycle, and the critical sections are a few
    deque operations with no nested acquisition.
    """

    def __init__(
        self,
        byte_budget: int = DEFAULT_BYTE_BUDGET,
        directory: str | os.PathLike | None = None,
    ) -> None:
        if byte_budget < 1:
            raise ValueError(f"byte_budget must be >= 1, got {byte_budget}")
        self.byte_budget = int(byte_budget)
        self.directory = Path(directory) if directory is not None else None
        self._entries: deque[str] = deque()
        self._bytes = 0
        self._lock = threading.Lock()  # san: allow-raw-lock
        #: entries ever recorded (accepted into the ring).
        self.recorded = 0
        #: entries evicted by the byte budget (or rejected as oversize).
        self.dropped = 0
        #: artifacts written by :meth:`dump`.
        self.dumps_written = 0

    # -- recording ---------------------------------------------------------------

    def record(self, kind: str, **data: Any) -> None:
        """Append one entry; evict oldest entries past the byte budget."""
        entry: dict[str, Any] = {"ts": round(time.time(), 6), "kind": kind}
        entry.update(data)
        try:
            encoded = json.dumps(entry, separators=(",", ":"), default=str)
        except (TypeError, ValueError):
            encoded = json.dumps(
                {"ts": entry["ts"], "kind": kind, "encode_error": True},
                separators=(",", ":"),
            )
        with self._lock:
            if len(encoded) > self.byte_budget:
                # One entry larger than the whole ring: never admit it,
                # or it would silently flush all history.
                self.dropped += 1
                return
            self._entries.append(encoded)
            self._bytes += len(encoded)
            self.recorded += 1
            while self._bytes > self.byte_budget:
                evicted = self._entries.popleft()
                self._bytes -= len(evicted)
                self.dropped += 1

    # -- reading -----------------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        """Exact bytes currently held by the ring."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[dict[str, Any]]:
        """Decode and return the retained entries, oldest first."""
        with self._lock:
            snapshot = list(self._entries)
        return [json.loads(entry) for entry in snapshot]

    # -- dumping -----------------------------------------------------------------

    def dump(
        self,
        reason: str,
        directory: str | os.PathLike | None = None,
    ) -> Path:
        """Write the postmortem artifact; return its path.

        The artifact is one JSON object::

            {"version": 1, "reason": ..., "pid": ..., "created_unix": ...,
             "byte_budget": ..., "recorded": ..., "dropped": ...,
             "entries": [oldest, ..., newest]}

        Entries are spliced in pre-encoded, so a dump does no per-entry
        re-serialisation.  Written atomically (temp + rename) so a crash
        mid-dump never leaves a half-written artifact that parses as
        truth.
        """
        target_dir = Path(directory) if directory is not None else self.directory
        if target_dir is None:
            target_dir = Path.cwd()
        target_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            entries = list(self._entries)
            recorded = self.recorded
            dropped = self.dropped
        now = time.time()
        header = {
            "version": ARTIFACT_VERSION,
            "reason": reason,
            "pid": os.getpid(),
            "created_unix": round(now, 6),
            "byte_budget": self.byte_budget,
            "recorded": recorded,
            "dropped": dropped,
        }
        head = json.dumps(header, separators=(",", ":"))
        body = head[:-1] + ',"entries":[' + ",".join(entries) + "]}"
        safe_reason = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
        )
        name = f"{ARTIFACT_PREFIX}{int(now * 1000)}-{safe_reason}-{os.getpid()}.json"
        path = target_dir / name
        tmp = target_dir / (name + ".tmp")
        tmp.write_text(body, encoding="utf-8")
        os.replace(tmp, path)
        self.dumps_written += 1
        return path


# ---------------------------------------------------------------------------
# process-wide singleton
# ---------------------------------------------------------------------------

_current: FlightRecorder | None = None


def install_flight_recorder(
    byte_budget: int = DEFAULT_BYTE_BUDGET,
    directory: str | os.PathLike | None = None,
) -> FlightRecorder:
    """Arm the process-wide recorder (idempotent per install call)."""
    global _current
    _current = FlightRecorder(byte_budget=byte_budget, directory=directory)
    return _current


def current() -> FlightRecorder | None:
    """The armed recorder, or ``None`` when flight recording is off."""
    return _current


def uninstall_flight_recorder() -> None:
    """Disarm the process-wide recorder (new components see ``None``)."""
    global _current
    _current = None


def dump_if_armed(
    reason: str, directory: str | os.PathLike | None = None
) -> Path | None:
    """Dump the armed recorder, if any; swallow dump I/O failures.

    Crash paths call this: a postmortem must never turn one failure into
    two, so a full disk or missing directory degrades to ``None``.
    """
    recorder = _current
    if recorder is None:
        return None
    try:
        return recorder.dump(reason, directory=directory)
    except OSError:
        return None


def list_artifacts(directory: str | os.PathLike) -> list[Path]:
    """Flight-recorder artifacts under ``directory``, oldest first."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob(ARTIFACT_PREFIX + "*.json"))


def load_artifact(path: str | os.PathLike) -> dict[str, Any]:
    """Parse one artifact; raises ``ValueError`` on schema mismatch."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "entries" not in doc:
        raise ValueError(f"{path}: not a flight-recorder artifact")
    if doc.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: artifact version {doc.get('version')!r} "
            f"!= supported {ARTIFACT_VERSION}"
        )
    return doc
