"""Pressure signals: is the pipeline keeping up?

Three independent saturation signals feed one composite score:

* **ingest lag** — event-time watermark skew: the highest event timestamp
  *submitted* minus the highest event timestamp *processed*.  Zero when
  the queue drains as fast as it fills; grows in event-time units when a
  backlog builds.  Normalised against a lag budget (how much skew the
  operator tolerates).
* **input-queue saturation** — the runner's bounded ingest queue, depth
  over capacity.  1.0 means producers are blocking.
* **subscriber saturation** — the fullest per-client outbound queue in
  the serving layer, depth over capacity.  1.0 means the slow-consumer
  policy is about to engage.

The composite score is the **maximum** of the component saturations
(clamped to [0, 1]): pressure is a weakest-link property — a drained
queue does not excuse a client about to be disconnected.

:class:`PressureAssessor` turns instantaneous scores into a stable state
signal: an EWMA smooths bursts, and the ok → overloaded transition uses
hysteresis (enter high, exit low) so the state cannot flap on a workload
oscillating around one threshold.  Everything here is pure and
deterministic — the property suite drives it with synthetic samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterable

#: default lag budget: event-time skew treated as full saturation.
DEFAULT_LAG_BUDGET_SECONDS = 5.0

#: hysteresis thresholds for the ok/overloaded state machine.
DEFAULT_ENTER_THRESHOLD = 0.75
DEFAULT_EXIT_THRESHOLD = 0.5

#: EWMA smoothing factor (weight of the newest observation).
DEFAULT_SMOOTHING = 0.3


def _saturation(depth: float, capacity: float) -> float:
    if capacity <= 0:
        return 0.0
    return min(1.0, max(0.0, depth / capacity))


@dataclass(frozen=True)
class PressureSample:
    """One instantaneous reading of every pressure input."""

    ingest_lag_seconds: float = 0.0
    queue_depth: int = 0
    queue_capacity: int = 0
    queue_high_water: int = 0
    subscriber_depth: int = 0
    subscriber_capacity: int = 0

    def components(
        self, lag_budget: float = DEFAULT_LAG_BUDGET_SECONDS
    ) -> dict[str, float]:
        """Per-signal saturation in [0, 1]."""
        return {
            "lag": _saturation(self.ingest_lag_seconds, lag_budget),
            "queue": _saturation(self.queue_depth, self.queue_capacity),
            "subscriber": _saturation(
                self.subscriber_depth, self.subscriber_capacity
            ),
        }

    def score(self, lag_budget: float = DEFAULT_LAG_BUDGET_SECONDS) -> float:
        """Composite pressure: the worst component saturation."""
        return max(self.components(lag_budget).values())

    def to_dict(
        self, lag_budget: float = DEFAULT_LAG_BUDGET_SECONDS
    ) -> dict[str, Any]:
        doc: dict[str, Any] = {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }
        doc["components"] = {
            name: round(value, 6)
            for name, value in self.components(lag_budget).items()
        }
        doc["score"] = round(self.score(lag_budget), 6)
        return doc


def merge_samples(parts: Iterable[PressureSample]) -> PressureSample:
    """Fold per-shard samples into one fleet sample.

    Depths and capacities sum (the fleet's total buffering), high-water
    and lag take the worst shard — a single lagging shard is fleet lag.
    The subscriber pair travels together: taking ``max(depth)`` and
    ``max(capacity)`` from *different* subscribers understates saturation
    (a 9/10 outbox next to an empty 0/100 one would read 9/100 = 0.09),
    so the merged sample carries the (depth, capacity) of the
    worst-saturated subscriber, ties broken toward the deeper outbox.
    """
    parts = list(parts)
    if not parts:
        return PressureSample()
    worst_subscriber = max(
        parts,
        key=lambda part: (
            _saturation(part.subscriber_depth, part.subscriber_capacity),
            part.subscriber_depth,
        ),
    )
    return PressureSample(
        ingest_lag_seconds=max(part.ingest_lag_seconds for part in parts),
        queue_depth=sum(part.queue_depth for part in parts),
        queue_capacity=sum(part.queue_capacity for part in parts),
        queue_high_water=max(part.queue_high_water for part in parts),
        subscriber_depth=worst_subscriber.subscriber_depth,
        subscriber_capacity=worst_subscriber.subscriber_capacity,
    )


@dataclass
class PressureAssessor:
    """EWMA-smoothed pressure level with hysteretic overload state.

    ``observe`` folds one instantaneous score (or sample) in and returns
    the smoothed level; :attr:`state` is ``"ok"`` until the level crosses
    ``enter_threshold`` and stays ``"overloaded"`` until it falls below
    ``exit_threshold``.
    """

    enter_threshold: float = DEFAULT_ENTER_THRESHOLD
    exit_threshold: float = DEFAULT_EXIT_THRESHOLD
    smoothing: float = DEFAULT_SMOOTHING
    lag_budget: float = DEFAULT_LAG_BUDGET_SECONDS
    level: float = 0.0
    state: str = field(default="ok")
    transitions: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {self.smoothing}")
        if not 0.0 <= self.exit_threshold <= self.enter_threshold <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 <= exit <= enter <= 1, got "
                f"exit={self.exit_threshold} enter={self.enter_threshold}"
            )

    def observe(self, reading: "PressureSample | float") -> float:
        """Fold one reading in; return the smoothed level."""
        if isinstance(reading, PressureSample):
            score = reading.score(self.lag_budget)
        else:
            score = min(1.0, max(0.0, float(reading)))
        self.level += self.smoothing * (score - self.level)
        if self.state == "ok" and self.level >= self.enter_threshold:
            self.state = "overloaded"
            self.transitions += 1
        elif self.state == "overloaded" and self.level < self.exit_threshold:
            self.state = "ok"
            self.transitions += 1
        return self.level

    @property
    def overloaded(self) -> bool:
        return self.state == "overloaded"

    def to_dict(self) -> dict[str, Any]:
        return {
            "level": round(self.level, 6),
            "state": self.state,
            "transitions": self.transitions,
            "enter_threshold": self.enter_threshold,
            "exit_threshold": self.exit_threshold,
        }

    def describe(self) -> str:
        """Short rendering for the monitor header / ``cepr stats --watch``."""
        return f"pressure={self.level:.2f} [{self.state}]"
