"""Lock-order race detection and lock contention accounting.

:func:`tracked_lock` is the project-wide lock constructor: with the
sanitizer disabled it returns a plain ``threading.Lock`` (zero cost, no
wrapper in the acquire path); enabled, it returns a :class:`TrackedLock`
that feeds two facilities:

* a process-wide **lock-order graph** — every acquire records
  ``held → acquiring`` edges per thread, and a cycle in that graph is a
  *potential deadlock* (two threads that ever take the same locks in
  opposite orders can deadlock under the right interleaving, whether or
  not they did this run).  TSan-style: the bug is reported without
  needing the hang to actually happen.
* **contention counters** — acquire count, contended-acquire count, and
  a wait-time histogram (zero samples for uncontended acquires, so the
  distribution covers every acquisition).  Surfaced through
  :func:`register_lock_metrics` in ``cepr stats``.

The self-lint rule CEPR603 enforces that production code under
``src/repro`` constructs locks through :func:`tracked_lock` only.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable

from repro.runtime.metrics import LatencyRecorder
from repro.sanitize.core import Sanitizer, sanitizer_enabled

_tls = threading.local()


def _held_stack() -> list[str]:
    """Names of tracked locks the current thread holds, in acquire order."""
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class LockOrderGraph:
    """Directed *held-before* graph over named locks, with cycle detection.

    ``record(held, acquiring)`` adds one edge per held lock and reports a
    cycle the first time the new edges close one.  Each distinct cycle
    (as a set of lock names) is reported once — a hot loop re-acquiring
    in the inverted order should not flood the log.
    """

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = {}
        self._reported: set[frozenset[str]] = set()
        self._mutex = threading.Lock()  # san: allow-raw-lock (is the tracker)

    def edges(self) -> dict[str, frozenset[str]]:
        with self._mutex:
            return {name: frozenset(out) for name, out in self._edges.items()}

    def record(
        self, held: Iterable[str], acquiring: str
    ) -> list[str] | None:
        """Add ``held → acquiring`` edges; return a new cycle path, if any."""
        with self._mutex:
            added = False
            for name in held:
                if name == acquiring:
                    continue
                out = self._edges.setdefault(name, set())
                if acquiring not in out:
                    out.add(acquiring)
                    added = True
            if not added:
                return None
            cycle = self._find_cycle(acquiring)
            if cycle is None:
                return None
            signature = frozenset(cycle)
            if signature in self._reported:
                return None
            self._reported.add(signature)
            return cycle

    def _find_cycle(self, start: str) -> list[str] | None:
        """DFS for a path ``start → … → start`` through the edge set."""
        path: list[str] = []
        seen: set[str] = set()

        def walk(node: str) -> bool:
            for nxt in self._edges.get(node, ()):
                if nxt == start:
                    return True
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                if walk(nxt):
                    return True
                path.pop()
            return False

        if walk(start):
            return [start, *path, start]
        return None


#: process-wide default graph — lock ordering is a whole-process property.
_default_graph = LockOrderGraph()
#: default reporter for locks constructed without an explicit sanitizer.
_default_sanitizer = Sanitizer(scope="locks")


def default_lock_sanitizer() -> Sanitizer:
    """The reporter behind locks made by bare :func:`tracked_lock` calls."""
    return _default_sanitizer


class TrackedLock:
    """A named ``threading.Lock`` that feeds the order graph and counters.

    API-compatible with ``threading.Lock`` (``acquire``/``release``/
    ``locked``/context manager).  The order edge is recorded on acquire
    *intent* — before blocking — so an actual deadlock still gets its
    report.
    """

    def __init__(
        self,
        name: str,
        *,
        graph: LockOrderGraph | None = None,
        sanitizer: Sanitizer | None = None,
    ) -> None:
        self.name = name
        self._lock = threading.Lock()  # san: allow-raw-lock (is the wrapper)
        self._graph = graph if graph is not None else _default_graph
        self._sanitizer = (
            sanitizer if sanitizer is not None else _default_sanitizer
        )
        #: successful acquisitions.
        self.acquisitions = 0
        #: acquisitions that had to wait (fast-path try failed).
        self.contended = 0
        #: wait-time distribution over *all* acquisitions (zeros when
        #: uncontended), pooled by ``register_lock_metrics``.
        self.wait_times = LatencyRecorder()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _held_stack()
        cycle = self._graph.record(tuple(held), self.name)
        if cycle is not None:
            self._sanitizer.trip(
                "lock-order-cycle",
                "potential deadlock: lock-order cycle "
                + " -> ".join(cycle)
                + f" (thread {threading.current_thread().name!r} holds "
                + f"{held!r} while acquiring {self.name!r})",
                cycle=list(cycle),
                held=list(held),
                acquiring=self.name,
            )
        acquired = self._lock.acquire(False)
        if not acquired:
            if not blocking:
                return False
            self.contended += 1
            started = time.perf_counter()
            acquired = self._lock.acquire(True, timeout)
            self.wait_times.record(time.perf_counter() - started)
            if not acquired:
                return False
        else:
            self.wait_times.record_zero()
        self.acquisitions += 1
        held.append(self.name)
        return True

    def release(self) -> None:
        held = _held_stack()
        if held and held[-1] == self.name:
            held.pop()
        elif self.name in held:  # non-nested release order is legal
            held.remove(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedLock({self.name!r}, acquisitions={self.acquisitions})"


def tracked_lock(
    name: str,
    *,
    graph: LockOrderGraph | None = None,
    sanitizer: Sanitizer | None = None,
):
    """The project lock constructor: tracked when sanitizing, plain otherwise.

    Passing an explicit ``sanitizer`` (tests, targeted soak runs) forces
    a :class:`TrackedLock` regardless of the global switch.
    """
    if sanitizer is not None or sanitizer_enabled():
        return TrackedLock(name, graph=graph, sanitizer=sanitizer)
    return threading.Lock()  # san: allow-raw-lock (disabled-mode fast path)


def register_lock_metrics(registry, lock, **labels) -> None:
    """Expose one tracked lock's counters in a metrics registry.

    No-op for plain locks, so callers can pass whatever
    :func:`tracked_lock` returned without checking.
    """
    if not isinstance(lock, TrackedLock):
        return
    registry.counter(
        "lock_acquisitions_total",
        "Tracked-lock acquisitions",
        fn=lambda: lock.acquisitions,
        lock=lock.name,
        **labels,
    )
    registry.counter(
        "lock_contended_total",
        "Tracked-lock acquisitions that had to wait",
        fn=lambda: lock.contended,
        lock=lock.name,
        **labels,
    )
    registry.histogram(
        "lock_wait_seconds",
        "Wait time per tracked-lock acquisition (zero when uncontended)",
        recorder=lock.wait_times,
        lock=lock.name,
        **labels,
    )
