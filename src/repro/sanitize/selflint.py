"""``cepr lint --self``: the project's AST self-lint pass.

Where :mod:`repro.language.analysis` lints *user queries*, this module
lints the **CEPR codebase itself** for violations of three project
rules, reported through the same stable diagnostics catalogue:

``CEPR601`` — *wall-clock-in-deterministic-path*.
    ``repro.engine``, ``repro.ranking``, and ``repro.language`` must be
    deterministic functions of the event stream: byte-identical output
    across runs, shards, and checkpoint/restore is the repo's core
    differential-testing contract.  Wall-clock reads (``time.time``,
    ``datetime.now``, …) and ``random`` calls there would break it.
    Timing instrumentation lives one layer up (``repro.runtime``
    latency/profiling), which is exempt by construction.

``CEPR602`` — *blocking-call-in-async-handler*.
    ``async def`` bodies must not call blocking primitives
    (``time.sleep``, ``subprocess``, bare ``open``, synchronous socket
    helpers) directly — the serving layer routes blocking work through
    ``asyncio.to_thread``.  The runtime half of this rule is the
    :class:`~repro.sanitize.aio.LoopStallWatchdog`.

``CEPR603`` — *untracked-lock*.
    Mutual-exclusion primitives (``threading.Lock``/``RLock``/
    ``Condition``) must be constructed through
    :func:`repro.sanitize.locks.tracked_lock` so the lock-order race
    detector and the contention counters see them.

A finding can be suppressed for one line with a pragma comment naming
the rule: ``# san: allow-wallclock``, ``# san: allow-blocking``, or
``# san: allow-raw-lock`` — every suppression is a reviewed exception.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.language.analysis.diagnostics import Diagnostic, Severity

#: top-level ``repro`` subpackages bound to stream-deterministic output.
DETERMINISTIC_PACKAGES = ("engine", "ranking", "language")

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
    }
)
_WALLCLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "datetime.today", "date.today")

_BLOCKING_CALLS = frozenset({"time.sleep", "os.system", "os.popen"})
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "urllib.request.")
_BLOCKING_NAMES = frozenset({"open", "input"})

_RAW_LOCK_CALLS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)

_PRAGMAS = {
    "CEPR601": "san: allow-wallclock",
    "CEPR602": "san: allow-blocking",
    "CEPR603": "san: allow-raw-lock",
}


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


class _FileLinter(ast.NodeVisitor):
    def __init__(self, relpath: str, lines: list[str], deterministic: bool) -> None:
        self.relpath = relpath
        self.lines = lines
        self.deterministic = deterministic
        self.diagnostics: list[Diagnostic] = []
        self._scopes: list[bool] = []  # True per enclosing async def

    # -- scope tracking ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append(False)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scopes.append(True)
        self.generic_visit(node)
        self._scopes.pop()

    @property
    def _in_async(self) -> bool:
        return bool(self._scopes) and self._scopes[-1]

    # -- rules ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            if self.deterministic and self._is_wallclock(dotted):
                self._report(
                    "CEPR601",
                    node,
                    f"wall-clock / nondeterministic call {dotted}() in a "
                    f"deterministic path",
                    "engine/ranking/language output must be a pure function "
                    "of the event stream; take timings in repro.runtime or "
                    "suppress with '# san: allow-wallclock'",
                )
            if self._in_async and self._is_blocking(dotted):
                self._report(
                    "CEPR602",
                    node,
                    f"blocking call {dotted}() inside an async def",
                    "route blocking work through asyncio.to_thread(...) so "
                    "the event loop stays responsive",
                )
            if dotted in _RAW_LOCK_CALLS:
                self._report(
                    "CEPR603",
                    node,
                    f"raw {dotted}() — lock invisible to the race detector",
                    "construct locks with repro.sanitize.locks.tracked_lock("
                    "name) so lock-order tracking and contention counters "
                    "cover them",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_wallclock(dotted: str) -> bool:
        if dotted in _WALLCLOCK_CALLS:
            return True
        if dotted == "random" or dotted.startswith("random."):
            return True
        return any(dotted.endswith(suffix) for suffix in _WALLCLOCK_SUFFIXES)

    @staticmethod
    def _is_blocking(dotted: str) -> bool:
        if dotted in _BLOCKING_CALLS or dotted in _BLOCKING_NAMES:
            return True
        return any(dotted.startswith(prefix) for prefix in _BLOCKING_PREFIXES)

    def _report(
        self, code: str, node: ast.AST, message: str, hint: str
    ) -> None:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines) and _PRAGMAS[code] in self.lines[line - 1]:
            return
        column = getattr(node, "col_offset", 0)
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                span=f"{self.relpath}:{line}:{column + 1}",
                message=message,
                hint=hint,
            )
        )


def lint_file(path: Path, relpath: str, deterministic: bool) -> list[Diagnostic]:
    """Self-lint one source file (already known to parse)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    linter = _FileLinter(relpath, source.splitlines(), deterministic)
    linter.visit(tree)
    return linter.diagnostics


def run_selflint(root: Path | None = None) -> list[Diagnostic]:
    """Lint the whole ``repro`` package; returns findings in path order.

    ``root`` overrides the package directory (tests lint fixture trees).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    diagnostics: list[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        relpath = str(Path(root.name) / relative)
        deterministic = (
            len(relative.parts) > 1 and relative.parts[0] in DETERMINISTIC_PACKAGES
        )
        diagnostics.extend(lint_file(path, relpath, deterministic))
    return diagnostics
