"""CEPRSan: runtime invariant sanitizer, race detector, and self-lint.

Three layers share one reporting spine (:class:`Sanitizer` → structured
log + trip counters → :class:`~repro.observability.registry.
MetricsRegistry`):

* **Invariants** (:mod:`repro.sanitize.invariants`) — hot-path checks
  attached to a live engine: ranking order and score-bound soundness,
  matcher run/window coherence, sequencer monotonicity, shared-index
  refcounts, and snapshot round-trips.
* **Concurrency** (:mod:`repro.sanitize.locks`,
  :mod:`repro.sanitize.core`, :mod:`repro.sanitize.aio`) — lock-order
  cycle detection, thread-affinity ownership tracking, and the asyncio
  loop-stall watchdog.
* **Self-lint** (:mod:`repro.sanitize.selflint`) — an AST pass over the
  codebase itself (``cepr lint --self``), emitting CEPR6xx diagnostics.

Everything is **zero-cost when disabled**: instrumentation is attached
only when ``CEPR_SANITIZE`` (or ``--sanitize``) is set, as instance-level
wrappers and tracked locks that plain runs never construct.
"""

from repro.sanitize.aio import LoopStallWatchdog
from repro.sanitize.core import (
    ENV_VAR,
    Sanitizer,
    SanitizerError,
    ThreadAffinity,
    disable_sanitizer,
    enable_sanitizer,
    refresh_from_env,
    release_affinity,
    sanitizer_enabled,
    sanitizer_mode,
)
from repro.sanitize.invariants import InvariantChecker, attach_engine_sanitizer
from repro.sanitize.locks import (
    LockOrderGraph,
    TrackedLock,
    default_lock_sanitizer,
    register_lock_metrics,
    tracked_lock,
)
from repro.sanitize.selflint import run_selflint

__all__ = [
    "ENV_VAR",
    "InvariantChecker",
    "LockOrderGraph",
    "LoopStallWatchdog",
    "Sanitizer",
    "SanitizerError",
    "ThreadAffinity",
    "TrackedLock",
    "attach_engine_sanitizer",
    "default_lock_sanitizer",
    "disable_sanitizer",
    "enable_sanitizer",
    "refresh_from_env",
    "register_lock_metrics",
    "release_affinity",
    "run_selflint",
    "sanitizer_enabled",
    "sanitizer_mode",
    "tracked_lock",
]
