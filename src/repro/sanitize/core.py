"""CEPRSan core: the enable switch, trip reporting, and thread affinity.

The sanitizer is **zero-cost when disabled**: nothing in the hot path
consults a flag per event.  Enabling it (``CEPR_SANITIZE=1`` in the
environment, ``--sanitize`` on the CLI, or :func:`enable_sanitizer` in
code) makes engine construction attach instance-level instrumentation
wrappers (see :mod:`repro.sanitize.invariants`); a disabled engine is
structurally identical to one built before this module existed — the E18
benchmark pins that equivalence.

Two reporting modes:

* ``raise`` (default) — a violated invariant raises
  :class:`SanitizerError` out of the call that exposed it.  Right for
  tests and CI, where a trip must fail loudly.
* ``log`` (``CEPR_SANITIZE=log``) — violations are logged through the
  structured logger with span context and counted, but execution
  continues.  Right for soak runs where one bad window should not kill
  the deployment.

Either way every trip lands in the owning :class:`Sanitizer`'s counter,
which the engine exposes as ``sanitizer_trips_total`` in its metrics
registry.
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from typing import Any

from repro.observability.log import get_logger

_log = get_logger(__name__)

#: environment variable consulted once at import (and by every later
#: :func:`refresh_from_env` call): ``1`` → raise mode, ``log`` → log mode,
#: unset/``0``/``off`` → disabled.
ENV_VAR = "CEPR_SANITIZE"

_OFF_VALUES = ("", "0", "false", "off", "no")


class SanitizerError(AssertionError):
    """An invariant the sanitizer watches was violated.

    Subclasses ``AssertionError`` deliberately: a trip means the system's
    internal contract is broken, not that the caller misused the API.
    """


def _mode_from_env() -> str | None:
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if raw in _OFF_VALUES:
        return None
    return "log" if raw == "log" else "raise"


_mode: str | None = _mode_from_env()


def sanitizer_enabled() -> bool:
    """Whether newly constructed engines attach sanitizer instrumentation."""
    return _mode is not None


def sanitizer_mode() -> str | None:
    """The active reporting mode: ``"raise"``, ``"log"``, or ``None``."""
    return _mode


def enable_sanitizer(mode: str = "raise") -> None:
    """Turn the sanitizer on for engines constructed from now on."""
    if mode not in ("raise", "log"):
        raise ValueError(f"sanitizer mode must be 'raise' or 'log', got {mode!r}")
    global _mode
    _mode = mode


def disable_sanitizer() -> None:
    """Turn the sanitizer off for engines constructed from now on."""
    global _mode
    _mode = None


def refresh_from_env() -> None:
    """Re-read :data:`ENV_VAR` (tests flip the environment mid-process)."""
    global _mode
    _mode = _mode_from_env()


class Sanitizer:
    """Trip collector and reporter for one engine (or one subsystem).

    ``mode=None`` (the default) resolves the reporting mode at trip time
    from the module switch, so a long-lived sanitizer follows runtime
    :func:`enable_sanitizer`/:func:`disable_sanitizer` flips.
    """

    def __init__(self, scope: str = "engine", mode: str | None = None) -> None:
        self.scope = scope
        self._mode = mode
        #: trips per check name (stable identifiers; see docs/SANITIZER.md).
        self.trips: Counter[str] = Counter()

    @property
    def mode(self) -> str:
        return self._mode or sanitizer_mode() or "raise"

    @property
    def total_trips(self) -> int:
        return sum(self.trips.values())

    def trip(self, check: str, message: str, **data: Any) -> None:
        """Record one invariant violation; raise in ``raise`` mode.

        ``data`` carries span context (query name, stream position, the
        offending values) into the structured log record.
        """
        self.trips[check] += 1
        payload: dict[str, Any] = {"check": check, "scope": self.scope}
        payload.update(data)
        _log.error(
            "sanitizer trip [%s] %s", check, message, extra={"data": payload}
        )
        # Feed the black box: every trip is recorded, and a raising trip
        # (about to unwind the stack) also flushes the postmortem artifact
        # while the ring still holds the lead-up.  No-ops when unarmed.
        from repro.observability.flightrec import current, dump_if_armed

        recorder = current()
        if recorder is not None:
            recorder.record(
                "sanitizer_trip", message=message, **payload
            )
            if self.mode == "raise":
                dump_if_armed(f"sanitizer-{check}")
        if self.mode == "raise":
            raise SanitizerError(f"[{check}] {message}")


class ThreadAffinity:
    """Single-owner-thread tracking for an engine's mutable state.

    The engine is single-threaded by contract: whichever thread mutates
    it first owns it until an explicit :meth:`release` at a synchronized
    handoff point (runner pause, worker spawn, coordinated restore).  A
    mutation from a second thread while the owner is still alive is the
    unsynchronized cross-thread access TSan would flag — it trips.

    The fast path (owner mutating again) is one integer compare.
    """

    __slots__ = ("sanitizer", "label", "_owner_id", "_owner_thread")

    def __init__(self, sanitizer: Sanitizer, label: str) -> None:
        self.sanitizer = sanitizer
        self.label = label
        self._owner_id: int | None = None
        self._owner_thread: threading.Thread | None = None

    def release(self) -> None:
        """Declare a synchronized handoff: the next mutator becomes owner.

        Callable from any thread, but only sound at points where the
        caller knows no mutation is in flight (barriers, pauses, joins).
        """
        self._owner_id = None
        self._owner_thread = None

    def check(self, action: str) -> None:
        """Claim or verify ownership for one mutating entry point."""
        ident = threading.get_ident()
        if ident == self._owner_id:
            return
        owner = self._owner_thread
        if owner is None or not owner.is_alive():
            self._owner_id = ident
            self._owner_thread = threading.current_thread()
            return
        self.sanitizer.trip(
            "cross-thread-mutation",
            f"{self.label}: {action!r} called from thread "
            f"{threading.current_thread().name!r} while owned by live thread "
            f"{owner.name!r} without a synchronized handoff",
            action=action,
            owner=owner.name,
            intruder=threading.current_thread().name,
        )


def release_affinity(engine: Any) -> None:
    """Release an engine's affinity tracker if it has one (else no-op).

    The runners call this at their handoff points; on an engine built
    without the sanitizer it is a single failed attribute lookup.
    """
    affinity = getattr(engine, "affinity", None)
    if affinity is not None:
        affinity.release()
