"""Runtime invariant checks wired into the engine when CEPRSan is on.

:func:`attach_engine_sanitizer` is called from ``CEPREngine.__init__``
*only* when the sanitizer is enabled.  It replaces a handful of bound
methods with instance-attribute wrappers (Python resolves instance
attributes before class attributes, and every internal call site goes
through ``self.<method>``), so a disabled engine carries no new code in
its hot path at all.

Checks, by hook point:

``sequencer.assign``
    **seq-monotonicity** — assigned sequence numbers strictly increase
    (re-baselined across ``restore``).
``engine._dispatch`` / ``advance_time`` / ``flush`` / registration
    **cross-thread-mutation** — see
    :class:`~repro.sanitize.core.ThreadAffinity`.
``RegisteredQuery.process`` / ``advance_time`` / ``flush``
    **ranking-order** — every emitted ranking is sorted by
    ``Match.sort_key`` and respects LIMIT;
    **score-bound** — every emitted score of a pruner-bearing query lies
    inside the interval bound that justified keeping its run (the exact
    soundness property score-bound pruning rests on: an unsound interval
    evaluator prunes runs it should keep, and this catches it at the
    emission that escaped);
    **matcher-activity-cache** — the O(1) activity caches behind the
    quiescent-skip gate agree with a recount;
    **run-monotonicity** / **dangling-binding** — every live run's
    seq/ts span is ordered and its bindings name only automaton
    variables.
``engine.register_query`` / ``unregister_query``
    **shared-index-coherence** — the refcounted predicate/prefix index
    owns exactly the registered queries' entries after churn (leaked
    owners, empty-but-present entries, and missing claims all trip).
``engine.snapshot``
    **snapshot-roundtrip** — ``restore(snapshot())`` followed by a second
    ``snapshot()`` reproduces the first byte-for-byte.
``ShedController`` (exact policy)
    **certified-shed** — every bound-certified elide is re-derived from
    the matcher and pruner state before it happens; a shed that could
    change emissions (event consumable by live state, no usable score
    bound, or non-positive headroom) trips.
"""

from __future__ import annotations

import copy
import math
from typing import TYPE_CHECKING

from repro.engine.runs import new_run
from repro.language.ast_nodes import WindowKind
from repro.language.intervals import IntervalEvaluator, PartialMatchView
from repro.sanitize.core import Sanitizer, ThreadAffinity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ranking.emission import Emission
    from repro.runtime.engine import CEPREngine
    from repro.runtime.query import RegisteredQuery


class InvariantChecker:
    """Per-engine invariant evaluation (stateless beyond seq baseline)."""

    def __init__(self, engine: "CEPREngine", sanitizer: Sanitizer) -> None:
        self.engine = engine
        self.san = sanitizer
        self._last_seq: int | None = None

    # -- sequencing -------------------------------------------------------------

    def check_seq(self, event) -> None:
        """Assigned seqs strictly increase (called right after assign)."""
        last = self._last_seq
        if last is not None and event.seq <= last:
            self.san.trip(
                "seq-monotonicity",
                f"sequencer assigned seq {event.seq} after {last} "
                f"(type={event.event_type!r}, ts={event.timestamp!r})",
                seq=event.seq,
                previous=last,
                ts=event.timestamp,
            )
        self._last_seq = event.seq

    def rebaseline_seq(self) -> None:
        """Forget the seq baseline (restore may rewind the sequencer)."""
        self._last_seq = None

    # -- per-query emission checks ----------------------------------------------

    def check_emissions(
        self, query: "RegisteredQuery", emissions: "list[Emission]"
    ) -> None:
        limit = query.ranker.limit
        for emission in emissions:
            ranking = emission.ranking
            if limit is not None and len(ranking) > limit:
                self.san.trip(
                    "ranking-order",
                    f"query {query.name!r} emitted {len(ranking)} matches "
                    f"with LIMIT {limit} ({emission.kind.value} emission at "
                    f"seq={emission.at_seq})",
                    query=query.name,
                    seq=emission.at_seq,
                    size=len(ranking),
                    limit=limit,
                )
            if len(ranking) > 1:
                keys = [match.sort_key() for match in ranking]
                try:
                    disordered = any(
                        keys[i] > keys[i + 1] for i in range(len(keys) - 1)
                    )
                except TypeError:  # heterogeneous keys: not comparable here
                    disordered = False
                if disordered:
                    self.san.trip(
                        "ranking-order",
                        f"query {query.name!r} emitted an unsorted ranking "
                        f"({emission.kind.value} emission at "
                        f"seq={emission.at_seq}): keys={keys!r}",
                        query=query.name,
                        seq=emission.at_seq,
                    )
            if query.pruner is not None:
                for match in ranking:
                    self.check_score_bound(query, match)

    def check_score_bound(self, query: "RegisteredQuery", match) -> None:
        """An emitted score must lie inside its interval justification.

        The pruner discards a partial run when the optimistic end of
        ``IntervalEvaluator.bound(primary)`` cannot beat the k-th score;
        that is only sound if every completion's actual score lies inside
        the interval computed over its bindings.  Here the completed
        match *is* a completion with no open variables, so the same
        evaluator must bracket the actual primary rank value.
        """
        pruner = query.pruner
        assert pruner is not None
        if not match.rank_values:
            return
        actual = match.rank_values[0]
        if isinstance(actual, bool) or not isinstance(actual, (int, float)):
            return  # string-keyed primary: no interval reasoning
        automaton = query.automaton
        window = automaton.window
        max_count: int | None = None
        max_duration: float | None = None
        if window is not None:
            if window.kind is WindowKind.COUNT:
                max_count = int(window.span)
            else:
                max_duration = window.span
        view = PartialMatchView(
            bindings=match.bindings,
            var_types=automaton.var_types,
            kleene_vars=automaton.kleene_vars,
            open_vars=frozenset(),
            domain_of=pruner.domain_of,
            max_kleene_count=max_count,
            duration_so_far=match.last_ts - match.first_ts,
            max_duration=max_duration,
            latest_timestamp=match.last_ts,
        )
        interval = IntervalEvaluator(view).bound(pruner.primary.expr)
        if interval is None:
            return
        lo, hi = interval.lo, interval.hi
        # Relative slack: aggregate scores may be summed in a different
        # association order by scorer vs. interval evaluator.
        slack = 1e-9 * max(
            1.0,
            abs(actual),
            abs(lo) if math.isfinite(lo) else 0.0,
            abs(hi) if math.isfinite(hi) else 0.0,
        )
        if actual < lo - slack or actual > hi + slack:
            self.san.trip(
                "score-bound",
                f"query {query.name!r} emitted primary rank value {actual!r} "
                f"outside its interval justification [{lo!r}, {hi!r}] "
                f"(match detection_index={match.detection_index}): the "
                f"interval evaluator that score-bound pruning trusts is "
                f"unsound for this expression",
                query=query.name,
                actual=actual,
                lo=lo,
                hi=hi,
                detection_index=match.detection_index,
            )

    # -- load shedding -------------------------------------------------------------

    def check_certified_shed(self, query: "RegisteredQuery", event) -> None:
        """A safe-certified shed must be provably output-neutral.

        Called by the shedding controller immediately before an exact-mode
        elide.  Re-derives the safety conditions from the matcher and
        pruner state without going through
        :meth:`~repro.runtime.query.RegisteredQuery.shed_probe`'s ladder,
        so a probe seeded (or regressed) into certifying consumable or
        top-k-viable events trips here instead of silently changing
        emissions.
        """
        matcher = query.matcher
        if event.event_type not in matcher._relevant_types:
            return
        key = matcher._partitioner.key_of(event)
        if key is None:
            return
        if matcher.event_touches_state(event, key):
            self.san.trip(
                "certified-shed",
                f"query {query.name!r}: certified shed of event "
                f"seq={event.seq} type={event.event_type!r} that live "
                f"partial-match state of partition {key!r} can consume — "
                f"eliding it can change emissions",
                query=query.name,
                seq=event.seq,
                event_type=event.event_type,
            )
            return
        if event.event_type != query._stage0_type:
            return
        if matcher._last_stage_index == 0:
            self.san.trip(
                "certified-shed",
                f"query {query.name!r}: certified shed of event "
                f"seq={event.seq} on a single-stage pattern — the event "
                f"completes a detection instantly, the shed skips it",
                query=query.name,
                seq=event.seq,
            )
            return
        if not matcher._stage_accepts_new(query._stage0, event):
            return
        pruner = query.pruner
        if pruner is None:
            self.san.trip(
                "certified-shed",
                f"query {query.name!r}: certified shed of run-starting "
                f"event seq={event.seq} on a query with no score-bound "
                f"pruner — no certificate can exist",
                query=query.name,
                seq=event.seq,
            )
            return
        candidate = new_run(
            query.automaton, event, key, matcher._tracked_attrs
        )
        headroom = pruner.event_headroom(candidate, event)
        if headroom is None or headroom <= 0:
            self.san.trip(
                "certified-shed",
                f"query {query.name!r}: certified shed of run-starting "
                f"event seq={event.seq} whose score-bound headroom is "
                f"{headroom!r} — a completion could still crack the "
                f"top-k, so the certificate is unsound",
                query=query.name,
                seq=event.seq,
                headroom=headroom,
            )

    # -- matcher state ------------------------------------------------------------

    def check_matcher(self, query: "RegisteredQuery") -> None:
        matcher = query.matcher
        live = 0
        pendings = 0
        for partition in matcher._partitions.values():
            live += len(partition.runs)
            pendings += len(partition.pendings)
        if (
            live != matcher._live_runs_cached
            or pendings != matcher._pendings_cached
        ):
            self.san.trip(
                "matcher-activity-cache",
                f"query {query.name!r}: activity caches "
                f"(live={matcher._live_runs_cached}, "
                f"pendings={matcher._pendings_cached}) disagree with a "
                f"recount (live={live}, pendings={pendings}); the "
                f"quiescent-skip gate would elide live work",
                query=query.name,
                cached_live=matcher._live_runs_cached,
                cached_pendings=matcher._pendings_cached,
                live=live,
                pendings=pendings,
            )
        known = query.automaton.var_types.keys()
        for run in matcher.iter_runs():
            if run.first_seq > run.last_seq or run.first_ts > run.last_ts:
                self.san.trip(
                    "run-monotonicity",
                    f"query {query.name!r}: live run spans "
                    f"seq [{run.first_seq}, {run.last_seq}] "
                    f"ts [{run.first_ts}, {run.last_ts}] — runs must extend "
                    f"forward in stream order",
                    query=query.name,
                    first_seq=run.first_seq,
                    last_seq=run.last_seq,
                )
            dangling = [name for name in run.bindings if name not in known]
            if dangling:
                self.san.trip(
                    "dangling-binding",
                    f"query {query.name!r}: live run binds unknown "
                    f"variable(s) {dangling!r} (automaton declares "
                    f"{sorted(known)!r})",
                    query=query.name,
                    dangling=dangling,
                )

    # -- shared execution index ----------------------------------------------------

    def check_shared_index(self) -> None:
        """Refcount/ownership coherence of the cross-query sharing state."""
        engine = self.engine
        shared = engine.shared
        if shared is None:
            return
        from repro.runtime.router import _shareable_specs

        names = set(engine._queries)
        for fingerprint, entry in shared._predicates.items():
            if not entry.owners:
                self.san.trip(
                    "shared-index-coherence",
                    f"predicate entry {fingerprint[:16]!r}… has no owners "
                    f"but was not pruned",
                    fingerprint=fingerprint,
                )
            stale = entry.owners - names
            if stale:
                self.san.trip(
                    "shared-index-coherence",
                    f"predicate entry {fingerprint[:16]!r}… is owned by "
                    f"unregistered quer(ies) {sorted(stale)!r} — refcount "
                    f"leak after UNREGISTER churn",
                    fingerprint=fingerprint,
                    stale=sorted(stale),
                )
        for key, entry in shared._prefixes.items():
            stale = entry.owners - names
            if stale:
                self.san.trip(
                    "shared-index-coherence",
                    f"prefix entry {key[:24]!r}… is owned by unregistered "
                    f"quer(ies) {sorted(stale)!r}",
                    key=key,
                    stale=sorted(stale),
                )
        for name, registered in engine._queries.items():
            for spec in _shareable_specs(registered.automaton):
                owners = shared.predicate_owners(spec.fingerprint)
                if name not in owners:
                    self.san.trip(
                        "shared-index-coherence",
                        f"query {name!r} anchors predicate "
                        f"{spec.fingerprint[:16]!r}… but does not own its "
                        f"index entry (owners={sorted(owners)!r}) — a "
                        f"co-owner's UNREGISTER pruned it too eagerly",
                        query=name,
                        fingerprint=spec.fingerprint,
                    )


def instrument_query(checker: InvariantChecker, query: "RegisteredQuery") -> None:
    """Wrap one registered query's pipeline entry points with checks."""
    orig_process = query.process
    orig_advance = query.advance_time
    orig_flush = query.flush

    def process(event):
        emissions = orig_process(event)
        checker.check_matcher(query)
        if emissions:
            checker.check_emissions(query, emissions)
        return emissions

    def advance_time(timestamp):
        emissions = orig_advance(timestamp)
        checker.check_matcher(query)
        if emissions:
            checker.check_emissions(query, emissions)
        return emissions

    def flush():
        emissions = orig_flush()
        if emissions:
            checker.check_emissions(query, emissions)
        return emissions

    query.process = process  # type: ignore[method-assign]
    query.advance_time = advance_time  # type: ignore[method-assign]
    query.flush = flush  # type: ignore[method-assign]


def attach_engine_sanitizer(engine: "CEPREngine") -> InvariantChecker:
    """Install all sanitizer instrumentation on one (enabled) engine.

    Every wrapper is an instance attribute shadowing the class method;
    internal call sites resolve through ``self.<name>`` / instance
    lookups, so the wrappers see every path (including the hoisted
    ``dispatch`` local in ``push_batch`` and recursive YIELD cascades).
    """
    sanitizer = engine.sanitizer
    assert sanitizer is not None
    checker = InvariantChecker(engine, sanitizer)
    affinity = ThreadAffinity(sanitizer, "CEPREngine")
    engine.affinity = affinity

    sequencer = engine._sequencer
    orig_assign = sequencer.assign

    def assign(event):
        orig_assign(event)
        checker.check_seq(event)

    sequencer.assign = assign  # type: ignore[method-assign]

    orig_dispatch = engine._dispatch

    def dispatch(event, depth: int = 0):
        if depth == 0:
            affinity.check("push")
        return orig_dispatch(event, depth)

    engine._dispatch = dispatch  # type: ignore[method-assign]

    orig_advance = engine.advance_time

    def advance_time(timestamp):
        affinity.check("advance_time")
        return orig_advance(timestamp)

    engine.advance_time = advance_time  # type: ignore[method-assign]

    orig_flush = engine.flush

    def flush():
        affinity.check("flush")
        return orig_flush()

    engine.flush = flush  # type: ignore[method-assign]

    orig_register = engine.register_query

    def register_query(*args, **kwargs):
        affinity.check("register_query")
        registered = orig_register(*args, **kwargs)
        instrument_query(checker, registered)
        checker.check_shared_index()
        return registered

    engine.register_query = register_query  # type: ignore[method-assign]

    orig_unregister = engine.unregister_query

    def unregister_query(name):
        affinity.check("unregister_query")
        orig_unregister(name)
        checker.check_shared_index()

    engine.unregister_query = unregister_query  # type: ignore[method-assign]

    orig_snapshot = engine.snapshot
    orig_restore = engine.restore

    def snapshot():
        state = orig_snapshot()
        # Round-trip self-check: restoring the snapshot we just took and
        # snapshotting again must reproduce it exactly.  restore() gets a
        # deep copy so a codec that mutates its input cannot hide.
        orig_restore(copy.deepcopy(state))
        after = orig_snapshot()
        if after != state:
            drifted = _first_divergence(state, after)
            sanitizer.trip(
                "snapshot-roundtrip",
                f"restore(snapshot()) is not state-equal: first divergence "
                f"at {drifted}",
                path=drifted,
            )
        return state

    engine.snapshot = snapshot  # type: ignore[method-assign]

    def restore(state):
        affinity.check("restore")
        orig_restore(state)
        checker.rebaseline_seq()

    engine.restore = restore  # type: ignore[method-assign]

    return checker


def _first_divergence(a, b, path: str = "$") -> str:
    """Human-oriented pointer to the first differing leaf of two snapshots."""
    if type(a) is not type(b):
        return f"{path} (type {type(a).__name__} vs {type(b).__name__})"
    if isinstance(a, dict):
        for key in a.keys() | b.keys():
            if key not in a or key not in b:
                return f"{path}.{key} (missing on one side)"
            if a[key] != b[key]:
                return _first_divergence(a[key], b[key], f"{path}.{key}")
        return f"{path} (dicts compare unequal but share items)"
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path} (length {len(a)} vs {len(b)})"
        for index, (left, right) in enumerate(zip(a, b)):
            if left != right:
                return _first_divergence(left, right, f"{path}[{index}]")
        return f"{path} (sequences compare unequal but share items)"
    return f"{path} ({a!r} vs {b!r})"
