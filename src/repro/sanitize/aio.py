"""Event-loop blocking-call detection for the serving layer.

The asyncio contract in :mod:`repro.serve.server` is that handlers never
block the loop: every blocking runtime call crosses to a worker thread
via ``asyncio.to_thread``.  A violation (``time.sleep``, a synchronous
socket call, a long computation) silently degrades every connection at
once — latency spikes with no exception anywhere.

:class:`LoopStallWatchdog` catches it at runtime: a heartbeat coroutine
stamps a timestamp on the loop at a fixed cadence, and a companion
*thread* (which a blocked loop cannot stall) checks the stamp's age.  A
gap beyond the threshold means some callback held the loop for that
long, and the watchdog trips.

Trips from the watchdog are always log-and-count, never raise: the
report fires on the watchdog thread, where raising would kill nothing
but the watchdog itself.  The static half of the same contract is the
CEPR602 self-lint rule (:mod:`repro.sanitize.selflint`), which flags
blocking calls inside ``async def`` bodies at lint time.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.sanitize.core import Sanitizer


class LoopStallWatchdog:
    """Detects callbacks that hold an asyncio loop beyond a threshold.

    Parameters
    ----------
    sanitizer:
        Trip reporter (mode is forced to counting/logging; see module
        docstring).
    threshold:
        Maximum tolerated heartbeat gap in seconds.  The default (0.25s)
        is far above a healthy loop's scheduling jitter and far below
        human-visible serving stalls.
    tick:
        Heartbeat cadence in seconds.
    """

    def __init__(
        self,
        sanitizer: Sanitizer,
        threshold: float = 0.25,
        tick: float = 0.05,
    ) -> None:
        self.sanitizer = sanitizer
        self.threshold = threshold
        self.tick = tick
        #: stall episodes detected (one per contiguous blockage).
        self.stalls = 0
        #: longest observed heartbeat gap, in seconds.
        self.worst_gap = 0.0
        self._last_beat = 0.0
        self._stop = threading.Event()
        self._in_stall = False
        self._task: asyncio.Task | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "LoopStallWatchdog":
        """Start the heartbeat task (on the running loop) and the watcher."""
        self._last_beat = time.monotonic()
        self._task = asyncio.get_running_loop().create_task(self._beat())
        self._thread = threading.Thread(
            target=self._watch, name="cepr-san-loop-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    async def _beat(self) -> None:
        try:
            while not self._stop.is_set():
                self._last_beat = time.monotonic()
                await asyncio.sleep(self.tick)
        except asyncio.CancelledError:
            pass

    def _watch(self) -> None:
        while not self._stop.wait(self.tick):
            gap = time.monotonic() - self._last_beat
            if gap > self.worst_gap:
                self.worst_gap = gap
            if gap <= self.threshold:
                self._in_stall = False
                continue
            if self._in_stall:
                continue  # one report per contiguous blockage
            self._in_stall = True
            self.stalls += 1
            self._report(gap)

    def _report(self, gap: float) -> None:
        # Forced log mode: raising on the watchdog thread kills only the
        # watchdog.  The trip still lands in the counter for assertions.
        reporter = Sanitizer(scope=self.sanitizer.scope, mode="log")
        reporter.trips = self.sanitizer.trips
        reporter.trip(
            "event-loop-blocked",
            f"asyncio event loop unresponsive for {gap:.3f}s "
            f"(threshold {self.threshold:.3f}s): a handler is making a "
            f"blocking call on the loop thread instead of using "
            f"asyncio.to_thread",
            gap_seconds=round(gap, 4),
            threshold_seconds=self.threshold,
        )
