"""Partial-match runs.

A :class:`Run` is one partial match of the automaton: a prefix of stages
bound to concrete events.  Runs are **immutable** — extending one returns a
new object sharing the old bindings — so the branching strategies
(``SKIP_TILL_ANY`` clones, Kleene take/proceed splits) share structure
instead of deep-copying, and a pruned or killed run simply drops out of the
partition's run list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.engine.aggregates import AggregateState
from repro.engine.match import Match
from repro.engine.nfa import PatternAutomaton, Stage
from repro.events.event import Event
from repro.events.schema import Domain
from repro.language.ast_nodes import WindowKind
from repro.language.expressions import EvalContext
from repro.language.intervals import PartialMatchView

Binding = Event | tuple[Event, ...]


@dataclass(frozen=True)
class Run:
    """One partial match (immutable; see module docstring)."""

    automaton: PatternAutomaton
    #: Index of the stage currently being filled; ``len(stages)`` means the
    #: run has completed (runs in that state are converted to matches and
    #: never stored).
    stage: int
    bindings: Mapping[str, Binding]
    first_seq: int
    last_seq: int
    first_ts: float
    last_ts: float
    partition_key: tuple[Any, ...] = ()
    #: Whether the current stage is a Kleene variable that already holds at
    #: least one element (and may accept more).
    kleene_open: bool = False
    #: Running aggregates per Kleene variable.
    agg_states: Mapping[str, AggregateState] = field(default_factory=dict)
    #: Indices (into ``automaton.negations``) of negations provisionally
    #: violated while their preceding Kleene variable was still open; the
    #: trip clears if that variable later accepts a newer element, and
    #: blocks the run from binding the negation's closing stage otherwise.
    trips: frozenset[int] = frozenset()

    # -- window --------------------------------------------------------------

    def window_excludes(self, event: Event) -> bool:
        """Whether ``event`` falls outside this run's window (run is dead)."""
        window = self.automaton.window
        if window is None:
            return False
        if window.kind is WindowKind.COUNT:
            return event.seq - self.first_seq >= window.span
        return event.timestamp - self.first_ts > window.span

    def window_end_seq(self) -> int | None:
        """Last sequence number a count window allows, inclusive."""
        window = self.automaton.window
        if window is None or window.kind is not WindowKind.COUNT:
            return None
        return self.first_seq + int(window.span) - 1

    def window_end_ts(self) -> float | None:
        window = self.automaton.window
        if window is None or window.kind is not WindowKind.TIME:
            return None
        return self.first_ts + window.span

    # -- evaluation context ----------------------------------------------------

    def context(
        self, current_var: str | None = None, current_event: Event | None = None
    ) -> EvalContext:
        """Build an :class:`EvalContext` over this run's bindings."""
        return EvalContext(
            bindings=self.bindings,
            current_var=current_var,
            current_event=current_event,
            agg_lookup=self._agg_lookup,
        )

    def _agg_lookup(self, var: str, func: str, attr: str | None) -> Any:
        state = self.agg_states.get(var)
        if state is None:
            return None
        return state.lookup(func, attr)

    # -- extension (all return fresh Run objects) -------------------------------

    def bind_singleton(self, stage: Stage, event: Event) -> "Run":
        """Bind ``event`` to a singleton stage and move past it."""
        bindings = dict(self.bindings)
        bindings[stage.variable.name] = event
        # Direct construction instead of dataclasses.replace: this is the
        # hottest allocation in the engine (one per extension).
        return Run(
            automaton=self.automaton,
            stage=stage.index + 1,
            bindings=bindings,
            first_seq=self.first_seq,
            last_seq=event.seq,
            first_ts=self.first_ts,
            last_ts=event.timestamp,
            partition_key=self.partition_key,
            kleene_open=False,
            agg_states=self.agg_states,
            trips=self.trips,
        )

    def extend_kleene(self, stage: Stage, event: Event) -> "Run":
        """Accept one more element into the current Kleene stage.

        Also clears any negation trips whose guard restarts when the Kleene
        variable accepts a newer element (see :attr:`trips`).
        """
        name = stage.variable.name
        bindings = dict(self.bindings)
        current = bindings.get(name, ())
        assert isinstance(current, tuple)
        bindings[name] = current + (event,)

        agg_states = dict(self.agg_states)
        state = agg_states.get(name)
        if state is not None:
            agg_states[name] = state.accept(event)

        trips = self.trips
        if trips:
            cleared = {
                i
                for i in trips
                if self.automaton.negations[i].after == stage.index
            }
            if cleared:
                trips = trips - cleared

        return Run(
            automaton=self.automaton,
            stage=self.stage,
            bindings=bindings,
            first_seq=self.first_seq,
            last_seq=event.seq,
            first_ts=self.first_ts,
            last_ts=event.timestamp,
            partition_key=self.partition_key,
            kleene_open=True,
            agg_states=agg_states,
            trips=trips,
        )

    def close_kleene(self) -> "Run":
        """Move past an open Kleene stage without consuming an event."""
        assert self.kleene_open
        return Run(
            automaton=self.automaton,
            stage=self.stage + 1,
            bindings=self.bindings,
            first_seq=self.first_seq,
            last_seq=self.last_seq,
            first_ts=self.first_ts,
            last_ts=self.last_ts,
            partition_key=self.partition_key,
            kleene_open=False,
            agg_states=self.agg_states,
            trips=self.trips,
        )

    def tripped(self, negation_index: int) -> "Run":
        return Run(
            automaton=self.automaton,
            stage=self.stage,
            bindings=self.bindings,
            first_seq=self.first_seq,
            last_seq=self.last_seq,
            first_ts=self.first_ts,
            last_ts=self.last_ts,
            partition_key=self.partition_key,
            kleene_open=self.kleene_open,
            agg_states=self.agg_states,
            trips=self.trips | {negation_index},
        )

    def blocked_by_trip(self, closing_stage_index: int) -> bool:
        """Whether a pending trip forbids binding stage ``closing_stage_index``."""
        return any(
            self.automaton.negations[i].before == closing_stage_index
            for i in self.trips
        )

    # -- views -------------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        return self.stage >= len(self.automaton.stages)

    def current_duration(self) -> float:
        return self.last_ts - self.first_ts

    def to_match(self, detection_index: int, query_name: str | None = None) -> Match:
        """Snapshot this (complete) run as a :class:`Match`."""
        return Match(
            bindings=dict(self.bindings),
            first_seq=self.first_seq,
            last_seq=self.last_seq,
            first_ts=self.first_ts,
            last_ts=self.last_ts,
            partition_key=self.partition_key,
            detection_index=detection_index,
            query_name=query_name,
        )

    def partial_view(
        self,
        domain_of: Callable[[str, str], Domain | None],
        latest_timestamp: float | None,
    ) -> PartialMatchView:
        """Expose this run to the interval evaluator for score bounding."""
        automaton = self.automaton
        open_vars: set[str] = set()
        if self.kleene_open:
            open_vars.add(automaton.stages[self.stage].variable.name)
        for stage in automaton.stages[self.stage + (1 if self.kleene_open else 0) :]:
            open_vars.add(stage.variable.name)

        window = automaton.window
        max_count: int | None = None
        max_duration: float | None = None
        if window is not None:
            if window.kind is WindowKind.COUNT:
                max_count = int(window.span)
            else:
                max_duration = window.span

        return PartialMatchView(
            bindings=self.bindings,
            var_types=automaton.var_types,
            kleene_vars=automaton.kleene_vars,
            open_vars=frozenset(open_vars),
            domain_of=domain_of,
            max_kleene_count=max_count,
            duration_so_far=self.current_duration(),
            max_duration=max_duration,
            latest_timestamp=latest_timestamp,
        )


def new_run(
    automaton: PatternAutomaton,
    first_event: Event,
    partition_key: tuple[Any, ...],
    tracked_attrs: Mapping[str, frozenset[str]],
) -> Run:
    """Create a run from its first bound event (stage 0).

    The caller has already checked stage-0 predicates.  For a Kleene first
    stage the run opens with one accepted element.
    """
    stage = automaton.stages[0]
    name = stage.variable.name
    agg_states: dict[str, AggregateState] = {}
    for var, attrs in tracked_attrs.items():
        agg_states[var] = AggregateState.for_attrs(attrs)

    if stage.is_kleene:
        if name in agg_states:
            agg_states[name] = agg_states[name].accept(first_event)
        bindings: dict[str, Binding] = {name: (first_event,)}
        return Run(
            automaton=automaton,
            stage=0,
            bindings=bindings,
            first_seq=first_event.seq,
            last_seq=first_event.seq,
            first_ts=first_event.timestamp,
            last_ts=first_event.timestamp,
            partition_key=partition_key,
            kleene_open=True,
            agg_states=agg_states,
        )
    return Run(
        automaton=automaton,
        stage=1,
        bindings={name: first_event},
        first_seq=first_event.seq,
        last_seq=first_event.seq,
        first_ts=first_event.timestamp,
        last_ts=first_event.timestamp,
        partition_key=partition_key,
        kleene_open=False,
        agg_states=agg_states,
    )
