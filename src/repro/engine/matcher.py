"""The pattern matching operator.

:class:`PatternMatcher` consumes one event at a time and maintains, per
partition, the set of live partial-match :class:`~repro.engine.runs.Run`
objects plus any *pending* matches (complete but guarded by a trailing
negation until their window expires).  Each ``process(event)`` call returns
the matches completed (or confirmed) by that event.

Event selection strategies (``USING`` clause):

* ``STRICT`` — every event of the partition must be consumed by a run or
  the run dies (contiguity is relative to the event types the query
  observes; see DESIGN.md).
* ``SKIP_TILL_NEXT`` — irrelevant events are skipped; a relevant event is
  consumed, branching when a Kleene *take* and a *proceed* are both
  possible.
* ``SKIP_TILL_ANY`` — every relevant event both extends a clone and is
  skipped by the original, enumerating all matching combinations.

Patterns ending in a Kleene variable emit a match for **every prefix** of
the closure that satisfies the predicates (the run stays live and keeps
extending) — the all-runs semantics of SASE+'s NFA^b.

Ranking integration: the optional ``prune_hook`` is called with every
*partial* run the matcher is about to keep (newly created or extended).
Returning ``True`` discards the run — this is where the ranking layer cuts
runs whose score upper bound cannot reach the current top-k (see
:mod:`repro.ranking.pruning`).

Tumbling mode (``tumbling=True``, used by ``EMIT ON WINDOW CLOSE``): the
stream is cut into epochs of the window span and runs are killed at epoch
boundaries, so every match completes within the epoch that ranks it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.engine.aggregates import tracked_attrs_by_var
from repro.engine.compiler import CompiledEdges, compile_edges
from repro.engine.match import Match
from repro.engine.nfa import PatternAutomaton, Stage
from repro.engine.partitioner import Partitioner
from repro.engine.runs import Run, new_run
from repro.engine.windows import EpochTracker
from repro.events.event import Event
from repro.language.ast_nodes import SelectionStrategy
from repro.language.errors import EvaluationError
from repro.language.expressions import EvalContext, Evaluator, evaluate_predicate
from repro.language.semantics import NegationSpec, PredicateSpec
from repro.observability.tracing import SpanKind, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runtime.router import SharedExecutionIndex

#: ``prune_hook(run, latest_event) -> True`` discards the partial run.
PruneHook = Callable[[Run, Event], bool]

# Span kinds pre-bound so traced hot paths skip the enum attribute lookup.
_RUN_CREATE = SpanKind.RUN_CREATE
_RUN_EXTEND = SpanKind.RUN_EXTEND
_RUN_KILL = SpanKind.RUN_KILL
_NFA_TRANSITION = SpanKind.NFA_TRANSITION
_MATCH = SpanKind.MATCH


@dataclass
class MatcherStats:
    """Counters exposed for metrics and the pruning experiments."""

    events_processed: int = 0
    events_skipped_no_key: int = 0
    runs_created: int = 0
    runs_extended: int = 0
    runs_pruned: int = 0
    runs_expired: int = 0
    runs_killed_strict: int = 0
    runs_killed_negation: int = 0
    runs_tripped: int = 0
    matches_completed: int = 0
    pending_created: int = 0
    pending_confirmed: int = 0
    pending_killed: int = 0
    evaluation_errors: int = 0
    #: shared-index consultations answered from the per-event memo /
    #: actually evaluated, charged to this (consulting) query — the
    #: hit/miss split the per-query cost account reports.  Whole-stage
    #: gate memo hits charge at most once per (event, query, stage)
    #: alongside the fingerprint-layer counts, which keeps the totals
    #: exact under partition sharding.
    shared_hits: int = 0
    shared_misses: int = 0
    peak_live_runs: int = 0

    def observe_live_runs(self, count: int) -> None:
        if count > self.peak_live_runs:
            self.peak_live_runs = count


@dataclass
class _Pending:
    """A complete match waiting out a trailing-negation guard."""

    match: Match
    run: Run  # retained for negation-predicate evaluation and window checks


@dataclass
class _Partition:
    runs: list[Run] = field(default_factory=list)
    pendings: list[_Pending] = field(default_factory=list)


class PatternMatcher:
    """Evaluates one compiled automaton over a stream (see module docs)."""

    def __init__(
        self,
        automaton: PatternAutomaton,
        prune_hook: PruneHook | None = None,
        tumbling: bool = False,
        query_name: str | None = None,
        lenient_errors: bool = False,
        track_aggregates: bool = True,
        shared: "SharedExecutionIndex | None" = None,
        compiled: bool = True,
    ) -> None:
        self.automaton = automaton
        self.prune_hook = prune_hook
        self.query_name = query_name
        #: Engine-level shared predicate index; when set, fingerprinted
        #: predicates evaluated against the event currently being
        #: dispatched are answered from its per-event memo (one evaluation
        #: per distinct predicate per event across all queries).
        self.shared = shared
        #: When true, a predicate that raises :class:`EvaluationError`
        #: (missing attribute, type mismatch, division by zero on dirty
        #: data) counts as *failed* instead of crashing the engine; see
        #: ``stats.evaluation_errors``.
        self.lenient_errors = lenient_errors
        self.stats = MatcherStats()
        #: Attached by the observability layer when tracing is enabled;
        #: every hot-path record site guards on ``is not None`` so the
        #: disabled cost is one attribute load per site.
        self.tracer: Tracer | None = None
        self.tumbling = tumbling
        if tumbling and automaton.window is None:
            raise ValueError("tumbling evaluation requires a WITHIN window")
        self._epochs = EpochTracker(automaton.window) if tumbling else None
        self._partitioner = Partitioner(automaton.partition_by)
        self._partitions: dict[tuple[Any, ...], _Partition] = {}
        # Incremental aggregate maintenance can be disabled for ablation:
        # aggregates are then recomputed from the binding lists on demand
        # (O(n) per evaluation instead of O(1) lookup).
        self._tracked_attrs = (
            tracked_attrs_by_var(automaton.needed_aggregates)
            if track_aggregates
            else {}
        )
        self._detection_counter = 0
        self._relevant_types = frozenset(
            s.event_type for s in automaton.stages
        ) | frozenset(n.element.event_type for n in automaton.negations)
        self._negation_types = frozenset(
            n.element.event_type for n in automaton.negations
        )
        self._trailing_negations = tuple(
            n for n in automaton.negations if n.before_is_end
        )
        self._internal_negations = tuple(
            (i, n) for i, n in enumerate(automaton.negations) if not n.before_is_end
        )
        self._last_stage_index = len(automaton.stages) - 1
        # O(1) activity caches for the shared-execution fast path: refreshed
        # after every state-changing entry point, read by the engine's
        # quiescence check before it decides to route an event here at all.
        self._live_runs_cached = 0
        self._pendings_cached = 0
        #: Fused per-edge closures (:func:`~repro.engine.compiler.
        #: compile_edges`): one call per edge check instead of per-predicate
        #: interpreter dispatch.  ``compiled=False`` keeps the interpreted
        #: paths live for differential testing and ablation.
        self.compiled = compiled
        self._edges: CompiledEdges | None = (
            compile_edges(self) if compiled else None
        )

    # -- public API ------------------------------------------------------------

    @property
    def live_run_count(self) -> int:
        return sum(len(p.runs) for p in self._partitions.values())

    @property
    def pending_count(self) -> int:
        return sum(len(p.pendings) for p in self._partitions.values())

    @property
    def quiescent(self) -> bool:
        """True when no partial run or pending match exists (O(1), cached).

        A quiescent matcher can only react to an event by *starting* a new
        run; the engine's shared-execution fast path uses this to skip
        dispatch entirely when the stage-0 gate fails (see
        :meth:`~repro.runtime.query.RegisteredQuery.skip_if_inert`).
        """
        return self._live_runs_cached == 0 and self._pendings_cached == 0

    def _refresh_activity(self) -> int:
        """Recompute both activity caches; returns the live-run count."""
        live = 0
        pendings = 0
        for partition in self._partitions.values():
            live += len(partition.runs)
            pendings += len(partition.pendings)
        self._live_runs_cached = live
        self._pendings_cached = pendings
        return live

    def process(self, event: Event) -> list[Match]:
        """Feed one event; returns the matches it completed (confirmed)."""
        if event.event_type not in self._relevant_types:
            return []
        self.stats.events_processed += 1
        key = self._partitioner.key_of(event)
        if key is None:
            self.stats.events_skipped_no_key += 1
            return []
        partition = self._partitions.setdefault(key, _Partition())

        completed: list[Match] = []
        self._expire(partition, event, completed)
        # Transitions run before negation kills so an event that both
        # matches a stage and a negated element can bind in the branches
        # that consume it, while still killing the branches that skip it
        # (its guard interval covers only the latter).
        self._transition(partition, event, key, completed)
        self._apply_negations(partition, event)
        self.stats.observe_live_runs(self._refresh_activity())
        return completed

    def tick(self, event: Event) -> list[Match]:
        """Window bookkeeping for an event elided upstream (load shedding).

        A bound-certified shed must still *age* the matcher: window-dead
        and epoch-crossed runs are expired and trailing-negation pendings
        whose guard passed are confirmed, exactly as the expiry phase of
        :meth:`process` would have done — only the transition and negation
        phases (which the shed certificate proves could not fire) are
        skipped.  Counter bookkeeping mirrors :meth:`process` so stats stay
        comparable with an unshedded run.  Returns confirmed matches.
        """
        if event.event_type not in self._relevant_types:
            return []
        self.stats.events_processed += 1
        key = self._partitioner.key_of(event)
        if key is None:
            self.stats.events_skipped_no_key += 1
            return []
        partition = self._partitions.get(key)
        if partition is None:
            return []
        completed: list[Match] = []
        self._expire(partition, event, completed)
        self.stats.observe_live_runs(self._refresh_activity())
        return completed

    def event_touches_state(self, event: Event, key: tuple[Any, ...]) -> bool:
        """Could ``event`` extend, kill, or trip any live run or pending?

        The shedding controller's protection check: ``True`` means the
        event is bound into (or threatens) live partial-match state in its
        partition and must never be shed.  ``False`` means the event could
        at most start a *fresh* stage-0 run — window expiry aside (which
        :meth:`tick` preserves), dropping it cannot disturb existing runs.
        Every test is conservative: type-level consumption is checked
        without evaluating predicates, so a protected verdict may be a
        false positive but a not-protected verdict is never a false
        negative.
        """
        partition = self._partitions.get(key)
        if partition is None or (not partition.runs and not partition.pendings):
            return False
        if event.event_type in self._negation_types:
            # dropping a negated event could resurrect a doomed run/pending
            return True
        if partition.runs and self.automaton.strategy is SelectionStrategy.STRICT:
            # under STRICT an *unconsumed* event kills runs: its absence is
            # just as observable as its presence
            return True
        stages = self.automaton.stages
        etype = event.event_type
        for run in partition.runs:
            stage = stages[run.stage]
            if run.kleene_open:
                if etype == stage.event_type:
                    return True
                next_index = run.stage + 1
                if (
                    next_index < len(stages)
                    and etype == stages[next_index].event_type
                ):
                    return True
            elif etype == stage.event_type:
                return True
        return False

    def advance_time(self, timestamp: float) -> list[Match]:
        """Heartbeat: stream time has reached ``timestamp`` with no event.

        Quiet streams must still expire time windows: runs whose time
        window has passed are dropped, and pending matches (trailing
        negation) whose guard window has passed are confirmed — without
        this, a match could stay pending forever on an idle partition.
        Count-based windows are untouched (arrival positions don't advance
        without events).  Returns confirmed matches.
        """
        confirmed: list[Match] = []
        for partition in self._partitions.values():
            survivors = []
            for run in partition.runs:
                end_ts = run.window_end_ts()
                if end_ts is not None and timestamp > end_ts:
                    self.stats.runs_expired += 1
                else:
                    survivors.append(run)
            partition.runs = survivors

            if partition.pendings:
                still_pending = []
                for pending in partition.pendings:
                    end_ts = pending.run.window_end_ts()
                    if end_ts is not None and timestamp > end_ts:
                        self.stats.pending_confirmed += 1
                        confirmed.append(pending.match)
                    else:
                        still_pending.append(pending)
                partition.pendings = still_pending
        self._refresh_activity()
        return confirmed

    def flush(self) -> list[Match]:
        """End of stream: confirm every pending match and clear all state.

        At stream end no further negated event can arrive inside any
        pending match's window, so all pendings are confirmed.
        """
        confirmed: list[Match] = []
        for partition in self._partitions.values():
            for pending in partition.pendings:
                self.stats.pending_confirmed += 1
                confirmed.append(pending.match)
            partition.pendings.clear()
            partition.runs.clear()
        self._live_runs_cached = 0
        self._pendings_cached = 0
        return confirmed

    def iter_runs(self) -> Iterator[Run]:
        for partition in self._partitions.values():
            yield from partition.runs

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe snapshot of all mutable state (runs, pendings, stats)."""
        from repro.engine.snapshot import encode_matcher

        return encode_matcher(self)

    def restore(self, state: dict[str, Any]) -> None:
        """Load a :meth:`snapshot` into this (freshly constructed) matcher.

        The matcher must have been built from the same compiled automaton
        the snapshot was taken from; runs are re-attached to it.
        """
        from repro.engine.snapshot import restore_matcher

        restore_matcher(self, state)

    # -- phase 1: expiry ---------------------------------------------------------

    def _expire(
        self, partition: _Partition, event: Event, completed: list[Match]
    ) -> None:
        """Drop window-dead runs; confirm pendings whose guard expired."""
        epoch = self._epochs.epoch_of(event) if self._epochs is not None else None

        survivors: list[Run] = []
        tracer = self.tracer
        for run in partition.runs:
            dead = run.window_excludes(event)
            reason = "expired" if dead else "epoch"
            if not dead and epoch is not None:
                assert self._epochs is not None
                dead = self._epochs.epoch_of_point(run.first_seq, run.first_ts) < epoch
            if dead:
                self.stats.runs_expired += 1
                if tracer is not None:
                    tracer.record(
                        _RUN_KILL,
                        event.seq,
                        event.timestamp,
                        self.query_name,
                        partition=run.partition_key,
                        reason=reason,
                        stage=run.stage,
                    )
            else:
                survivors.append(run)
        partition.runs = survivors

        if partition.pendings:
            still_pending: list[_Pending] = []
            for pending in partition.pendings:
                if self._pending_guard_expired(pending, event, epoch):
                    self.stats.pending_confirmed += 1
                    completed.append(pending.match)
                else:
                    still_pending.append(pending)
            partition.pendings = still_pending

    def _pending_guard_expired(
        self, pending: _Pending, event: Event, epoch: int | None
    ) -> bool:
        if epoch is not None:
            assert self._epochs is not None
            match = pending.match
            if self._epochs.epoch_of_point(match.first_seq, match.first_ts) < epoch:
                return True
        return pending.run.window_excludes(event)

    # -- phase 2: negations --------------------------------------------------------

    def _apply_negations(self, partition: _Partition, event: Event) -> None:
        """Kill runs/pendings violated by a negated event."""
        if event.event_type not in self._negation_types:
            return

        # Trailing negations only ever threaten pending matches: their guard
        # opens at completion, which is exactly when a run becomes pending.
        tracer = self.tracer
        if partition.pendings and self._trailing_negations:
            survivors: list[_Pending] = []
            for pending in partition.pendings:
                if pending.match.last_seq == event.seq:
                    # the pending's own completing event is not "after" it
                    survivors.append(pending)
                elif self._pending_violated(pending, event):
                    self.stats.pending_killed += 1
                    if tracer is not None:
                        tracer.record(
                            _RUN_KILL,
                            event.seq,
                            event.timestamp,
                            self.query_name,
                            partition=pending.run.partition_key,
                            reason="negation",
                            pending=True,
                        )
                else:
                    survivors.append(pending)
            partition.pendings = survivors

        if not self._internal_negations:
            return
        new_runs: list[Run] = []
        for run in partition.runs:
            if run.last_seq == event.seq:
                # this run consumed the event as a positive element; it is
                # not "between" that run's bindings.
                new_runs.append(run)
                continue
            outcome = self._check_internal_negations(run, event)
            if outcome is None:
                self.stats.runs_killed_negation += 1
                if tracer is not None:
                    tracer.record(
                        _RUN_KILL,
                        event.seq,
                        event.timestamp,
                        self.query_name,
                        partition=run.partition_key,
                        reason="negation",
                        stage=run.stage,
                    )
                continue
            new_runs.append(outcome)
        partition.runs = new_runs

    def _pending_violated(self, pending: _Pending, event: Event) -> bool:
        return any(
            negation.element.event_type == event.event_type
            and self._negation_predicates_pass(pending.run, negation, event)
            for negation in self._trailing_negations
        )

    def _check_internal_negations(self, run: Run, event: Event) -> Run | None:
        """Return the (possibly tripped) run, or ``None`` when killed."""
        for index, negation in self._internal_negations:
            if negation.element.event_type != event.event_type:
                continue
            # Guard opens once positives[after] is bound, closes when
            # positives[before] starts binding.
            after_bound = run.stage > negation.after or (
                run.stage == negation.after and run.kleene_open
            )
            if not after_bound:
                continue
            before_started = run.stage > negation.before or (
                run.stage == negation.before and run.kleene_open
            )
            if before_started:
                continue
            if not self._negation_predicates_pass(run, negation, event):
                continue
            # Guard violated.  If the element before the negation is an open
            # Kleene, a later take restarts the guard: trip, don't kill.
            if run.stage == negation.after and run.kleene_open:
                if index not in run.trips:
                    self.stats.runs_tripped += 1
                    run = run.tripped(index)
                continue
            return None
        return run

    def _negation_predicates_pass(
        self, run: Run, negation: NegationSpec, event: Event
    ) -> bool:
        edges = self._edges
        if edges is not None:
            return edges.negation[id(negation)](run, event)
        variable = negation.element.variable
        return all(
            self._spec_holds(predicate, run, variable, event)
            for predicate in negation.predicates
        )

    def _spec_holds(
        self, spec: PredicateSpec, run: Run, variable: str, event: Event
    ) -> bool:
        """Evaluate one anchored predicate against a candidate event.

        Fingerprinted (self-contained) predicates consulted for the event
        currently being dispatched are answered by the engine's shared
        per-event memo — their value cannot depend on the run, so one
        evaluation serves every run of every query.  Everything else goes
        through the classic per-run context evaluation.
        """
        shared = self.shared
        if (
            shared is not None
            and spec.fingerprint is not None
            and shared.current_event is event
        ):
            return shared.predicate_holds(spec, self.stats, self.lenient_errors)
        return self._predicate_holds(
            spec.evaluator,
            run.context(current_var=variable, current_event=event),
        )

    def _predicate_holds(self, evaluator: Evaluator, ctx: EvalContext) -> bool:
        """Evaluate one predicate, applying the error policy."""
        if not self.lenient_errors:
            return evaluate_predicate(evaluator, ctx)
        try:
            return evaluate_predicate(evaluator, ctx)
        except EvaluationError:
            self.stats.evaluation_errors += 1
            return False

    # -- phase 3: transitions ---------------------------------------------------------

    def _transition(
        self,
        partition: _Partition,
        event: Event,
        key: tuple[Any, ...],
        completed: list[Match],
    ) -> None:
        strategy = self.automaton.strategy
        next_runs: list[Run] = []
        tracer = self.tracer

        for run in partition.runs:
            options, consumed = self._options_for(run, event, completed)
            if not consumed:
                if strategy is SelectionStrategy.STRICT:
                    self.stats.runs_killed_strict += 1
                    if tracer is not None:
                        tracer.record(
                            _RUN_KILL,
                            event.seq,
                            event.timestamp,
                            self.query_name,
                            partition=run.partition_key,
                            reason="strict",
                            stage=run.stage,
                        )
                else:
                    next_runs.append(run)
                continue
            if strategy is SelectionStrategy.SKIP_TILL_ANY:
                next_runs.append(run)  # the original skips the event
            for new_partial in options:
                if self._keep_partial(new_partial, event):
                    next_runs.append(new_partial)

        self._create_run(event, key, next_runs, completed)
        partition.runs = next_runs

    def _create_run(
        self,
        event: Event,
        key: tuple[Any, ...],
        next_runs: list[Run],
        completed: list[Match],
    ) -> None:
        """Start a fresh run if ``event`` can bind stage 0."""
        first = self.automaton.stages[0]
        if event.event_type != first.event_type:
            return
        if not self._stage_accepts_new(first, event):
            return
        run = new_run(self.automaton, event, key, self._tracked_attrs)
        self.stats.runs_created += 1
        if self.tracer is not None:
            self.tracer.record(
                _RUN_CREATE,
                event.seq,
                event.timestamp,
                self.query_name,
                partition=key,
                stage=0,
            )
        if run.is_complete:  # single-element singleton pattern
            self._try_complete(run, completed)
            return
        if run.kleene_open and first.index == self._last_stage_index:
            # Single-element prefix of a pattern that is one Kleene stage.
            self._try_complete(run.close_kleene(), completed)
        if self._keep_partial(run, event):
            next_runs.append(run)

    def _options_for(
        self, run: Run, event: Event, completed: list[Match]
    ) -> tuple[list[Run], bool]:
        """All legal extensions of ``run`` by ``event``.

        Returns ``(partial_runs, consumed)`` where ``consumed`` is true when
        any transition — including one that completed a match — fired.
        Completions are appended to ``completed`` (or parked as pending)
        here; only still-partial runs are returned.
        """
        stages = self.automaton.stages
        options: list[Run] = []
        consumed = False

        stage = stages[run.stage]

        if run.kleene_open:
            # (a) take: extend the open Kleene variable.
            if event.event_type == stage.event_type and self._kleene_accepts(
                run, stage, event
            ):
                extended = run.extend_kleene(stage, event)
                self.stats.runs_extended += 1
                if self.tracer is not None:
                    self.tracer.record(
                        _RUN_EXTEND,
                        event.seq,
                        event.timestamp,
                        self.query_name,
                        partition=run.partition_key,
                        stage=run.stage,
                        transition="take",
                    )
                consumed = True
                if run.stage == self._last_stage_index:
                    # Trailing Kleene: every accepted prefix is a candidate
                    # match; the run stays live to keep extending.
                    self._try_complete(extended.close_kleene(), completed)
                options.append(extended)
            # (b) proceed: close the Kleene and bind the next stage.
            next_index = run.stage + 1
            if next_index < len(stages):
                next_stage = stages[next_index]
                if (
                    event.event_type == next_stage.event_type
                    and not run.blocked_by_trip(next_index)
                ):
                    advanced = self._try_bind_stage(
                        run.close_kleene(), next_stage, event
                    )
                    if advanced is not None:
                        consumed = True
                        self._register_partial(
                            advanced, next_stage, event, options, completed
                        )
            return options, consumed

        # Awaiting the current stage's first (or only) event.
        if event.event_type == stage.event_type and not run.blocked_by_trip(
            stage.index
        ):
            bound = self._try_bind_stage(run, stage, event)
            if bound is not None:
                consumed = True
                self._register_partial(bound, stage, event, options, completed)
        return options, consumed

    def _register_partial(
        self,
        run: Run,
        stage: Stage,
        event: Event,
        options: list[Run],
        completed: list[Match],
    ) -> None:
        """Route a freshly extended run to completion and/or the run list."""
        if run.is_complete:
            self._try_complete(run, completed)
            return
        self.stats.runs_extended += 1
        if self.tracer is not None:
            self.tracer.record(
                _RUN_EXTEND,
                event.seq,
                event.timestamp,
                self.query_name,
                partition=run.partition_key,
                stage=stage.index,
                transition="bind",
            )
        if run.kleene_open and stage.index == self._last_stage_index:
            # First element of a trailing Kleene: candidate prefix match.
            self._try_complete(run.close_kleene(), completed)
        options.append(run)

    def _try_bind_stage(self, run: Run, stage: Stage, event: Event) -> Run | None:
        """Bind ``event`` to ``stage`` (singleton bind or Kleene element)."""
        if stage.is_kleene:
            if not self._kleene_accepts(run, stage, event):
                return None
            bound = run.extend_kleene(stage, event)
        else:
            edges = self._edges
            if edges is not None:
                if not edges.bind[stage.index](run, event):
                    return None
            else:
                variable = stage.variable.name
                for predicate in stage.bind_predicates:
                    if not self._spec_holds(predicate, run, variable, event):
                        return None
            bound = run.bind_singleton(stage, event)
        if self.tracer is not None:
            self.tracer.record(
                _NFA_TRANSITION,
                event.seq,
                event.timestamp,
                self.query_name,
                partition=run.partition_key,
                stage=stage.index,
                variable=stage.variable.name,
            )
        return bound

    def _kleene_accepts(self, run: Run, stage: Stage, event: Event) -> bool:
        edges = self._edges
        if edges is not None:
            return edges.kleene[stage.index](run, event)
        variable = stage.variable.name
        return all(
            self._spec_holds(predicate, run, variable, event)
            for predicate in stage.incremental_predicates
        )

    def _stage_accepts_new(self, stage: Stage, event: Event) -> bool:
        """Stage-0 predicate check against an empty run context."""
        edges = self._edges
        if edges is not None and stage.index == 0:
            return edges.gate0(event)
        shared = self.shared
        if shared is not None and shared.current_event is event:
            return shared.stage_gate(stage, self.stats, self.lenient_errors)
        variable = stage.variable.name
        predicates = (
            stage.incremental_predicates if stage.is_kleene else stage.bind_predicates
        )
        return all(
            self._predicate_holds(
                predicate.evaluator,
                EvalContext(bindings={}, current_var=variable, current_event=event),
            )
            for predicate in predicates
        )

    def _try_complete(self, run: Run, completed: list[Match]) -> bool:
        """Check completion predicates; emit the match or park it pending."""
        edges = self._edges
        if edges is not None:
            if not edges.completion(run):
                return False
        else:
            ctx = run.context()
            for predicate in self.automaton.completion_predicates:
                if not self._predicate_holds(predicate.evaluator, ctx):
                    return False
        match = run.to_match(self._detection_counter, self.query_name)
        self._detection_counter += 1
        self.stats.matches_completed += 1
        parked = bool(self._trailing_negations)
        if self.tracer is not None:
            self.tracer.record(
                _MATCH,
                match.last_seq,
                match.last_ts,
                self.query_name,
                partition=run.partition_key,
                detection_index=match.detection_index,
                pending=parked,
            )
        if parked:
            partition = self._partitions.setdefault(run.partition_key, _Partition())
            partition.pendings.append(_Pending(match=match, run=run))
            self.stats.pending_created += 1
            return True
        completed.append(match)
        return True

    def _keep_partial(self, run: Run, event: Event) -> bool:
        """Apply the prune hook to a partial run the matcher wants to keep."""
        if self.prune_hook is None:
            return True
        if self.prune_hook(run, event):
            self.stats.runs_pruned += 1
            if self.tracer is not None:
                self.tracer.record(
                    _RUN_KILL,
                    event.seq,
                    event.timestamp,
                    self.query_name,
                    partition=run.partition_key,
                    reason="pruned",
                    stage=run.stage,
                )
            return False
        return True
