"""The compiled pattern automaton.

CEPR patterns are linear sequences with optional Kleene-plus elements and
interleaved negations, so the automaton is a chain of :class:`Stage` nodes
— one per *positive* pattern element — each carrying the predicates pushed
down to it by semantic analysis, plus a side table of
:class:`~repro.language.semantics.NegationSpec` guards.  This is the
NFA^b structure of SASE+ (Agrawal et al., SIGMOD'08) specialised to
sequence patterns: the nondeterminism (skip edges, Kleene take/proceed
branching) lives in the run manager, not in explicit epsilon edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.language.ast_nodes import SelectionStrategy, WindowSpec
from repro.language.semantics import (
    AnalyzedQuery,
    NegationSpec,
    PredicateSpec,
    VariableInfo,
)


@dataclass(frozen=True)
class Stage:
    """One positive pattern element in the automaton chain.

    * ``bind_predicates`` run once, on the candidate event that binds the
      stage (for a Kleene stage: never — Kleene stages only carry
      incremental predicates).
    * ``incremental_predicates`` run on every candidate element of a Kleene
      stage, including the first.
    """

    index: int
    variable: VariableInfo
    bind_predicates: tuple[PredicateSpec, ...] = ()
    incremental_predicates: tuple[PredicateSpec, ...] = ()

    @property
    def event_type(self) -> str:
        return self.variable.event_type

    @property
    def is_kleene(self) -> bool:
        return self.variable.is_kleene


@dataclass(frozen=True)
class PatternAutomaton:
    """The full compiled automaton for one query."""

    stages: tuple[Stage, ...]
    negations: tuple[NegationSpec, ...]
    completion_predicates: tuple[PredicateSpec, ...]
    window: WindowSpec | None
    strategy: SelectionStrategy
    partition_by: tuple[str, ...]
    #: variable name -> event type for every positive variable (used by the
    #: interval evaluator when bounding unbound variables).
    var_types: Mapping[str, str] = field(default_factory=dict)
    kleene_vars: frozenset[str] = frozenset()
    #: aggregates any expression of the query needs, as (var, func, attr).
    needed_aggregates: frozenset[tuple[str, str, str | None]] = frozenset()
    analyzed: AnalyzedQuery | None = None
    #: Canonical chain keys, one per stage, identifying this automaton's
    #: prefix states in the engine's shared intern pool (see
    #: :class:`~repro.runtime.router.SharedExecutionIndex`).  Key ``i``
    #: covers stages ``0..i``, so equal keys mean equal pattern heads and
    #: the stage objects themselves are shared by identity.  Empty when the
    #: automaton was compiled outside a shared-execution engine.
    prefix_keys: tuple[str, ...] = ()

    @property
    def accepting_index(self) -> int:
        """Stage index that signifies completion."""
        return len(self.stages)

    @property
    def has_trailing_negation(self) -> bool:
        return any(neg.before_is_end for neg in self.negations)

    def stage_for_type(self, event_type: str) -> list[Stage]:
        """Stages whose element type matches ``event_type``."""
        return [s for s in self.stages if s.event_type == event_type]

    def first_stage(self) -> Stage:
        return self.stages[0]
