"""Window bookkeeping shared by the matcher and the ranking layer.

Per-run sliding-window expiry lives on :class:`~repro.engine.runs.Run`
itself; this module provides the *tumbling epoch* arithmetic used by
``EMIT ON WINDOW CLOSE`` (DESIGN.md: in that mode the stream is cut into
consecutive epochs of the window span, matches compete within their epoch,
and runs never cross an epoch boundary).
"""

from __future__ import annotations

from repro.events.event import Event
from repro.language.ast_nodes import WindowKind, WindowSpec


class EpochTracker:
    """Maps events to tumbling epochs of one window span.

    Epoch ``i`` covers sequence numbers ``[i*span, (i+1)*span)`` for count
    windows, or timestamps ``[i*span, (i+1)*span)`` for time windows.
    """

    def __init__(self, window: WindowSpec) -> None:
        self.window = window

    def epoch_of(self, event: Event) -> int:
        """The epoch ``event`` belongs to."""
        if self.window.kind is WindowKind.COUNT:
            return int(event.seq // int(self.window.span))
        return int(event.timestamp // self.window.span)

    def epoch_of_point(self, seq: int, timestamp: float) -> int:
        if self.window.kind is WindowKind.COUNT:
            return int(seq // int(self.window.span))
        return int(timestamp // self.window.span)

    def epoch_bounds(self, epoch: int) -> tuple[float, float]:
        """Half-open ``[start, end)`` bounds of ``epoch`` in its native unit."""
        span = self.window.span
        return (epoch * span, (epoch + 1) * span)
