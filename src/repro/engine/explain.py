"""Query plan explanation.

``explain(automaton)`` renders the compiled evaluation plan of a query as
readable text: the stage chain with every pushed-down predicate at its
evaluation point, negation guards, completion predicates, ranking keys,
window/strategy/emission configuration, and whether score-bound pruning is
eligible.  Exposed as ``RegisteredQuery.explain()`` and used by the demo
tooling — understanding *where* a predicate runs is the difference between
a query that scales and one that does not.
"""

from __future__ import annotations

from repro.engine.nfa import PatternAutomaton
from repro.language.ast_nodes import EmitKind, WindowKind
from repro.language.printer import format_expr
from repro.language.semantics import AnalyzedQuery


def explain(automaton: PatternAutomaton, pruning_enabled: bool = False) -> str:
    """Render the evaluation plan of a compiled query."""
    analyzed = automaton.analyzed
    lines: list[str] = ["evaluation plan:"]

    lines.append(f"  strategy: {automaton.strategy.value}")
    lines.append(f"  window:   {_describe_window(automaton)}")
    if automaton.partition_by:
        lines.append(f"  partition by: {', '.join(automaton.partition_by)}")

    lines.append("  stages:")
    for stage in automaton.stages:
        kind = "kleene+" if stage.is_kleene else "singleton"
        lines.append(
            f"    [{stage.index}] {stage.event_type} {stage.variable.name} ({kind})"
        )
        for predicate in stage.bind_predicates:
            lines.append(f"          on bind: {format_expr(predicate.expr)}")
        for predicate in stage.incremental_predicates:
            lines.append(f"          per element: {format_expr(predicate.expr)}")

    for negation in automaton.negations:
        element = negation.element
        guard = (
            "until window expiry (match pends)"
            if negation.before_is_end
            else f"until stage {negation.before} binds"
        )
        lines.append(
            f"  negation: NOT {element.event_type} {element.variable} — armed "
            f"after stage {negation.after}, {guard}"
        )
        for predicate in negation.predicates:
            lines.append(f"          kills when: {format_expr(predicate.expr)}")

    for predicate in automaton.completion_predicates:
        lines.append(f"  at completion: {format_expr(predicate.expr)}")

    if analyzed is not None:
        lines.extend(_describe_ranking(analyzed, pruning_enabled))
        lines.extend(_describe_sharding(analyzed))
    return "\n".join(lines)


def _describe_window(automaton: PatternAutomaton) -> str:
    window = automaton.window
    if window is None:
        return "none (runs never expire)"
    if window.kind is WindowKind.COUNT:
        return f"{int(window.span)} events"
    return f"{window.span:g} seconds"


def _describe_ranking(analyzed: AnalyzedQuery, pruning_enabled: bool) -> list[str]:
    lines: list[str] = []
    if analyzed.rank_keys:
        keys = ", ".join(
            f"{format_expr(k.expr)} {k.direction.value}" for k in analyzed.rank_keys
        )
        lines.append(f"  rank by: {keys}")
    if analyzed.limit is not None:
        lines.append(f"  limit: top {analyzed.limit}")
    lines.append(f"  emit: {_describe_emit(analyzed)}")
    if analyzed.yield_spec is not None:
        assignments = ", ".join(
            f"{attr} = {format_expr(expr)}"
            for attr, expr, _evaluator in analyzed.yield_spec.assignments
        )
        lines.append(
            f"  yield: derive {analyzed.yield_spec.event_type}({assignments}) "
            f"per emitted match"
        )

    eligible = (
        bool(analyzed.rank_keys)
        and analyzed.limit is not None
        and analyzed.emit.kind is EmitKind.ON_WINDOW_CLOSE
    )
    if not analyzed.rank_keys:
        status = "n/a (unranked query)"
    elif not eligible:
        status = "ineligible (needs LIMIT and EMIT ON WINDOW CLOSE)"
    elif pruning_enabled:
        status = "active (needs schema domains to produce bounds)"
    else:
        status = "disabled by engine configuration"
    lines.append(f"  score-bound pruning: {status}")
    return lines


def _describe_sharding(analyzed: AnalyzedQuery) -> list[str]:
    """Render the analyzer's shardability certificate."""
    from repro.language.analysis.shardability import certify_shardability

    report = certify_shardability(analyzed)
    described = report.describe()
    lines = [f"  sharding: {described[0]}"]
    lines.extend(f"  {line}" for line in described[1:])
    return lines


def _describe_emit(analyzed: AnalyzedQuery) -> str:
    emit = analyzed.emit
    if emit.kind is EmitKind.ON_WINDOW_CLOSE:
        return "ordered answer per tumbling window epoch"
    if emit.kind is EmitKind.EAGER:
        if analyzed.rank_keys:
            return "snapshot whenever the top-k changes (revisions possible)"
        return "each match on detection"
    assert emit.period is not None
    unit = "events" if emit.period_kind is WindowKind.COUNT else "seconds"
    return f"snapshot every {emit.period:g} {unit}"
