"""Partition-key extraction for ``PARTITION BY``.

Partitioning splits the run space by the values of one or more attributes
(e.g. ``PARTITION BY symbol``): events only interact with runs of their own
key, which is both a semantic construct (per-symbol patterns) and the main
scalability lever (run lists stay short).
"""

from __future__ import annotations

from typing import Any

from repro.events.event import Event

#: The single key used by unpartitioned queries.
GLOBAL_KEY: tuple[Any, ...] = ()


class Partitioner:
    """Extracts a hashable partition key from each event."""

    def __init__(self, attributes: tuple[str, ...]) -> None:
        self.attributes = attributes

    @property
    def is_partitioned(self) -> bool:
        return bool(self.attributes)

    def key_of(self, event: Event) -> tuple[Any, ...] | None:
        """The event's partition key, or ``None`` if a key attribute is
        missing (such events cannot participate and are skipped)."""
        if not self.attributes:
            return GLOBAL_KEY
        key = []
        for attr in self.attributes:
            if attr not in event.payload:
                return None
            key.append(event.payload[attr])
        return tuple(key)
