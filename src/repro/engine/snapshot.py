"""JSON codec for engine state: events, runs, matches, matcher state.

Checkpointing (:mod:`repro.store.checkpoint`) persists live engine state
as JSON.  This module is the engine-side half of that contract: every
``encode_*`` function turns an engine object into plain
dict/list/scalar structures, and the matching ``decode_*`` function
rebuilds an equivalent object.

Two deliberate asymmetries keep the format small and stable:

* **Matches are encoded without scores.**  ``score``/``rank_values`` are
  deterministic functions of the bindings (the scorer re-derives them on
  restore), and their normalised comparator form contains non-JSON
  helper types (e.g. reversed-string keys).
* **Runs are encoded without their automaton.**  The automaton is
  compiled from the query text, which the restoring process already has;
  :func:`decode_run` re-attaches the live compiled automaton.

Non-finite floats are *not* handled here — the checkpoint store
deep-sanitises the full state tree once at save time
(:mod:`repro.events.jsonsafe`).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.engine.aggregates import AggregateState, AttrAggregates
from repro.engine.match import Match
from repro.engine.matcher import MatcherStats, PatternMatcher, _Partition, _Pending
from repro.engine.nfa import PatternAutomaton
from repro.engine.runs import Binding, Run
from repro.events.event import Event


class SnapshotFormatError(ValueError):
    """Raised when snapshot state does not decode to valid engine objects."""


# -- events -----------------------------------------------------------------------


def encode_event(event: Event) -> dict[str, Any]:
    return {
        "type": event.event_type,
        "ts": event.timestamp,
        "seq": event.seq,
        "payload": dict(event.payload),
    }


def decode_event(state: Mapping[str, Any]) -> Event:
    try:
        event = Event(state["type"], state["ts"], **state["payload"])
        event.seq = int(state["seq"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"bad event record: {exc}") from exc
    return event


# -- bindings ---------------------------------------------------------------------


def encode_binding(binding: Binding) -> dict[str, Any]:
    if isinstance(binding, Event):
        return {"one": encode_event(binding)}
    return {"many": [encode_event(event) for event in binding]}


def decode_binding(state: Mapping[str, Any]) -> Binding:
    if "one" in state:
        return decode_event(state["one"])
    if "many" in state:
        return tuple(decode_event(item) for item in state["many"])
    raise SnapshotFormatError(f"bad binding record: keys {sorted(state)}")


def encode_bindings(bindings: Mapping[str, Binding]) -> dict[str, Any]:
    return {var: encode_binding(binding) for var, binding in bindings.items()}


def decode_bindings(state: Mapping[str, Any]) -> dict[str, Binding]:
    return {var: decode_binding(item) for var, item in state.items()}


# -- aggregate states -------------------------------------------------------------


def encode_agg_state(state: AggregateState) -> dict[str, Any]:
    return {
        "count": state.count,
        "tracked": sorted(state.tracked),
        "attrs": {
            attr: {
                "total": agg.total,
                "min": agg.minimum,
                "max": agg.maximum,
                "first": agg.first,
                "last": agg.last,
            }
            for attr, agg in state.attrs.items()
        },
    }


def decode_agg_state(state: Mapping[str, Any]) -> AggregateState:
    try:
        attrs = {
            attr: AttrAggregates(
                total=item["total"],
                minimum=item["min"],
                maximum=item["max"],
                first=item["first"],
                last=item["last"],
            )
            for attr, item in state["attrs"].items()
        }
        return AggregateState(
            count=int(state["count"]),
            attrs=attrs,
            tracked=frozenset(state["tracked"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"bad aggregate state: {exc}") from exc


# -- matches ----------------------------------------------------------------------


def encode_match(match: Match) -> dict[str, Any]:
    return {
        "bindings": encode_bindings(match.bindings),
        "first_seq": match.first_seq,
        "last_seq": match.last_seq,
        "first_ts": match.first_ts,
        "last_ts": match.last_ts,
        "partition_key": list(match.partition_key),
        "detection_index": match.detection_index,
        "query_name": match.query_name,
    }


def decode_match(state: Mapping[str, Any]) -> Match:
    """Rebuild a match **unscored**; the caller re-scores deterministically."""
    try:
        return Match(
            bindings=decode_bindings(state["bindings"]),
            first_seq=int(state["first_seq"]),
            last_seq=int(state["last_seq"]),
            first_ts=float(state["first_ts"]),
            last_ts=float(state["last_ts"]),
            partition_key=tuple(state["partition_key"]),
            detection_index=int(state["detection_index"]),
            query_name=state["query_name"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"bad match record: {exc}") from exc


# -- runs -------------------------------------------------------------------------


def encode_run(run: Run) -> dict[str, Any]:
    return {
        "stage": run.stage,
        "bindings": encode_bindings(run.bindings),
        "first_seq": run.first_seq,
        "last_seq": run.last_seq,
        "first_ts": run.first_ts,
        "last_ts": run.last_ts,
        "partition_key": list(run.partition_key),
        "kleene_open": run.kleene_open,
        "agg_states": {
            var: encode_agg_state(state) for var, state in run.agg_states.items()
        },
        "trips": sorted(run.trips),
    }


def decode_run(state: Mapping[str, Any], automaton: PatternAutomaton) -> Run:
    """Rebuild a run against the live compiled ``automaton``."""
    try:
        return Run(
            automaton=automaton,
            stage=int(state["stage"]),
            bindings=decode_bindings(state["bindings"]),
            first_seq=int(state["first_seq"]),
            last_seq=int(state["last_seq"]),
            first_ts=float(state["first_ts"]),
            last_ts=float(state["last_ts"]),
            partition_key=tuple(state["partition_key"]),
            kleene_open=bool(state["kleene_open"]),
            agg_states={
                var: decode_agg_state(item)
                for var, item in state["agg_states"].items()
            },
            trips=frozenset(int(index) for index in state["trips"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"bad run record: {exc}") from exc


# -- matcher ----------------------------------------------------------------------


def encode_matcher(matcher: PatternMatcher) -> dict[str, Any]:
    """Snapshot a matcher's mutable state (runs, pendings, counters)."""
    partitions = []
    for key, partition in matcher._partitions.items():
        partitions.append(
            {
                "key": list(key),
                "runs": [encode_run(run) for run in partition.runs],
                "pendings": [
                    {
                        "match": encode_match(pending.match),
                        "run": encode_run(pending.run),
                    }
                    for pending in partition.pendings
                ],
            }
        )
    return {
        "partitions": partitions,
        "detection_counter": matcher._detection_counter,
        "stats": vars(matcher.stats).copy(),
    }


def restore_matcher(matcher: PatternMatcher, state: Mapping[str, Any]) -> None:
    """Load :func:`encode_matcher` state into a freshly built matcher."""
    automaton = matcher.automaton
    partitions: dict[tuple[Any, ...], _Partition] = {}
    try:
        for item in state["partitions"]:
            partition = _Partition(
                runs=[decode_run(run, automaton) for run in item["runs"]],
                pendings=[
                    _Pending(
                        match=decode_match(pending["match"]),
                        run=decode_run(pending["run"], automaton),
                    )
                    for pending in item["pendings"]
                ],
            )
            partitions[tuple(item["key"])] = partition
        matcher._partitions = partitions
        matcher._detection_counter = int(state["detection_counter"])
        matcher.stats = MatcherStats(**state["stats"])
        # The quiescent-skip gate reads the O(1) activity caches; leaving
        # them stale after a restore would let it elide events that should
        # extend the restored runs.
        matcher._refresh_activity()
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"bad matcher state: {exc}") from exc
