"""Incremental aggregate state for Kleene bindings.

Queries that aggregate over a Kleene variable (``avg(bs.price)`` in a
``WHERE``, ``RANK BY``, or pruning bound) would otherwise rescan the
binding list on every evaluation — O(n²) per run over the variable's
lifetime.  :class:`AggregateState` maintains count/sum/min/max/first/last
per referenced attribute in O(1) per accepted element, and the run exposes
it to expression evaluation through ``EvalContext.agg_lookup``.

States are immutable: ``accept`` returns a new state, so cloned runs share
history for free (matching the engine's copy-on-extend run design).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from repro.events.event import Event
from repro.language.ast_nodes import Aggregate, Expr, iter_subexpressions


@dataclass(frozen=True)
class AttrAggregates:
    """Running aggregates for one attribute of one Kleene variable."""

    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None
    first: Any = None
    last: Any = None

    def accept(self, value: Any) -> "AttrAggregates":
        numeric = isinstance(value, (int, float)) and not isinstance(value, bool)
        return AttrAggregates(
            total=self.total + value if numeric else self.total,
            minimum=(
                value
                if numeric and (self.minimum is None or value < self.minimum)
                else self.minimum
            ),
            maximum=(
                value
                if numeric and (self.maximum is None or value > self.maximum)
                else self.maximum
            ),
            first=value if self.first is None else self.first,
            last=value,
        )


@dataclass(frozen=True)
class AggregateState:
    """All running aggregates for one Kleene variable of one run."""

    count: int = 0
    attrs: Mapping[str, AttrAggregates] = None  # type: ignore[assignment]
    tracked: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.attrs is None:
            object.__setattr__(self, "attrs", {})

    @classmethod
    def for_attrs(cls, attrs: Iterable[str]) -> "AggregateState":
        tracked = frozenset(attrs)
        return cls(count=0, attrs={a: AttrAggregates() for a in tracked}, tracked=tracked)

    def accept(self, event: Event) -> "AggregateState":
        """Return a new state including ``event``."""
        new_attrs = dict(self.attrs)
        for attr in self.tracked:
            if attr in event.payload:
                new_attrs[attr] = new_attrs[attr].accept(event.payload[attr])
        return replace(self, count=self.count + 1, attrs=new_attrs)

    def lookup(self, func: str, attr: str | None) -> Any:
        """Serve one aggregate value, or ``None`` when unavailable.

        ``None`` makes the expression evaluator fall back to recomputing
        from the binding list, so partial tracking is always safe.
        """
        if func in ("count", "len"):
            return self.count if self.count > 0 else None
        if attr is None or attr not in self.attrs or self.count == 0:
            return None
        agg = self.attrs[attr]
        if func == "sum":
            return agg.total
        if func == "avg":
            return agg.total / self.count
        if func == "min":
            return agg.minimum
        if func == "max":
            return agg.maximum
        if func == "first":
            return agg.first
        if func == "last":
            return agg.last
        return None


def needed_aggregates(exprs: Iterable[Expr]) -> frozenset[tuple[str, str, str | None]]:
    """Collect every ``(var, func, attr)`` aggregate used by ``exprs``."""
    needed: set[tuple[str, str, str | None]] = set()
    for expr in exprs:
        for node in iter_subexpressions(expr):
            if isinstance(node, Aggregate):
                needed.add((node.var, node.func, node.attr))
    return frozenset(needed)


def tracked_attrs_by_var(
    needed: Iterable[tuple[str, str, str | None]],
) -> dict[str, frozenset[str]]:
    """Group the attributes each Kleene variable must track."""
    grouped: dict[str, set[str]] = {}
    for var, _func, attr in needed:
        grouped.setdefault(var, set())
        if attr is not None:
            grouped[var].add(attr)
    return {var: frozenset(attrs) for var, attrs in grouped.items()}
