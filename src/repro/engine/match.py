"""The :class:`Match` result record produced by the matching engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.events.event import Event

Binding = Event | tuple[Event, ...]


@dataclass
class Match:
    """One complete pattern match.

    ``bindings`` maps each positive pattern variable to its event (singleton
    variables) or tuple of events (Kleene variables).  ``score`` is filled
    by the ranking layer: a comparable tuple where *smaller sorts first*
    (descending keys are negated), so the best match has the minimum score.
    """

    bindings: Mapping[str, Binding]
    first_seq: int
    last_seq: int
    first_ts: float
    last_ts: float
    partition_key: tuple[Any, ...] = ()
    #: Monotone detection index within the query, for deterministic
    #: tie-breaking and revision bookkeeping.
    detection_index: int = -1
    score: tuple[Any, ...] | None = None
    query_name: str | None = None
    #: Values of the RANK BY expressions in user order/direction (for
    #: display; ``score`` is the normalised comparator form).
    rank_values: tuple[Any, ...] = field(default_factory=tuple)

    def __getitem__(self, var: str) -> Binding:
        return self.bindings[var]

    def events(self) -> Iterator[Event]:
        """All matched events in pattern-variable order."""
        for binding in self.bindings.values():
            if isinstance(binding, Event):
                yield binding
            else:
                yield from binding

    @property
    def duration(self) -> float:
        """Stream-time span of the match."""
        return self.last_ts - self.first_ts

    @property
    def size(self) -> int:
        """Total number of matched events."""
        return sum(
            1 if isinstance(b, Event) else len(b) for b in self.bindings.values()
        )

    def sort_key(self) -> tuple[Any, ...]:
        """Total order used by rankers: score, then detection order."""
        if self.score is None:
            return (self.detection_index,)
        return (*self.score, self.detection_index)

    def describe(self) -> str:
        """One-line human-readable rendering, used by sinks and the monitor."""
        parts = []
        for var, binding in self.bindings.items():
            if isinstance(binding, Event):
                parts.append(f"{var}={binding.event_type}@{binding.timestamp:g}")
            else:
                parts.append(f"{var}=[{len(binding)} x {binding[0].event_type}]")
        score = ""
        if self.rank_values:
            rendered = ", ".join(
                f"{v:g}" if isinstance(v, (int, float)) else repr(v)
                for v in self.rank_values
            )
            score = f" score=({rendered})"
        return f"Match<{' '.join(parts)}{score}>"
