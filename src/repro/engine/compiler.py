"""Compile an analysed query into a :class:`~repro.engine.nfa.PatternAutomaton`."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.aggregates import needed_aggregates
from repro.engine.nfa import PatternAutomaton, Stage
from repro.language.ast_nodes import Expr, split_conjuncts
from repro.language.fingerprint import canonical_expr
from repro.language.semantics import AnalyzedQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runtime.router import SharedExecutionIndex


def compile_automaton(
    analyzed: AnalyzedQuery,
    shared: "SharedExecutionIndex | None" = None,
) -> PatternAutomaton:
    """Build the stage chain and predicate attachments for ``analyzed``.

    With ``shared`` (the engine's :class:`~repro.runtime.router.
    SharedExecutionIndex`), each stage is interned by its canonical chain
    key: queries compiled from a common pattern head reuse the *same*
    stage objects for the shared prefix and fork only at the first
    divergent stage.  Reuse requires identical variable names, element
    types, and canonical predicate chains — semantically equal automaton
    prefixes — so a reused stage's compiled evaluators are sound for every
    query that shares it.
    """
    stages: list[Stage] = []
    for info in analyzed.positives:
        assigned = analyzed.predicates_at.get(info.name, [])
        bind = tuple(p for p in assigned if not p.incremental)
        incremental = tuple(p for p in assigned if p.incremental)
        if info.is_kleene and bind:
            # Semantic analysis never anchors non-incremental predicates at
            # a Kleene variable; guard against regressions loudly.
            raise AssertionError(
                f"non-incremental predicate anchored at Kleene variable {info.name!r}"
            )
        stages.append(
            Stage(
                index=info.position,
                variable=info,
                bind_predicates=bind,
                incremental_predicates=incremental,
            )
        )

    prefix_keys: tuple[str, ...] = ()
    if shared is not None:
        keys: list[str] = []
        chain = ""
        interned: list[Stage] = []
        for stage in stages:
            chain = _stage_key(chain, stage)
            interned.append(shared.intern_stage(chain, stage))
            keys.append(chain)
        stages = interned
        prefix_keys = tuple(keys)

    exprs: list[Expr] = []
    exprs.extend(split_conjuncts(analyzed.ast.where))
    exprs.extend(key.expr for key in analyzed.rank_keys)
    aggregates = needed_aggregates(exprs)

    return PatternAutomaton(
        stages=tuple(stages),
        negations=tuple(analyzed.negations),
        completion_predicates=tuple(analyzed.completion_predicates),
        window=analyzed.window,
        strategy=analyzed.strategy,
        partition_by=analyzed.partition_by,
        var_types={v.name: v.event_type for v in analyzed.positives},
        kleene_vars=analyzed.kleene_variable_names(),
        needed_aggregates=aggregates,
        analyzed=analyzed,
        prefix_keys=prefix_keys,
    )


def _stage_key(prefix: str, stage: Stage) -> str:
    """Canonical chain key for ``stage`` appended to ``prefix``.

    Captures everything stage reuse depends on: the whole prefix (chained
    key), the variable's name (match bindings are keyed by it), element
    type and Kleene-ness, and the ordered canonical forms of the attached
    predicates (order preserved — evaluation order is observable through
    the lenient-error counters).  Variable names of *earlier* stages are
    pinned by the chained prefix, so predicates referencing them need no
    renaming to compare canonically.
    """
    parts = [
        prefix,
        stage.variable.name,
        stage.event_type,
        "kleene" if stage.is_kleene else "single",
        ";".join(canonical_expr(p.expr) for p in stage.bind_predicates),
        ";".join(canonical_expr(p.expr) for p in stage.incremental_predicates),
    ]
    return "\x1f".join(parts)
