"""Compile an analysed query into a :class:`~repro.engine.nfa.PatternAutomaton`."""

from __future__ import annotations

from repro.engine.aggregates import needed_aggregates
from repro.engine.nfa import PatternAutomaton, Stage
from repro.language.ast_nodes import Expr, split_conjuncts
from repro.language.semantics import AnalyzedQuery


def compile_automaton(analyzed: AnalyzedQuery) -> PatternAutomaton:
    """Build the stage chain and predicate attachments for ``analyzed``."""
    stages: list[Stage] = []
    for info in analyzed.positives:
        assigned = analyzed.predicates_at.get(info.name, [])
        bind = tuple(p for p in assigned if not p.incremental)
        incremental = tuple(p for p in assigned if p.incremental)
        if info.is_kleene and bind:
            # Semantic analysis never anchors non-incremental predicates at
            # a Kleene variable; guard against regressions loudly.
            raise AssertionError(
                f"non-incremental predicate anchored at Kleene variable {info.name!r}"
            )
        stages.append(
            Stage(
                index=info.position,
                variable=info,
                bind_predicates=bind,
                incremental_predicates=incremental,
            )
        )

    exprs: list[Expr] = []
    exprs.extend(split_conjuncts(analyzed.ast.where))
    exprs.extend(key.expr for key in analyzed.rank_keys)
    aggregates = needed_aggregates(exprs)

    return PatternAutomaton(
        stages=tuple(stages),
        negations=tuple(analyzed.negations),
        completion_predicates=tuple(analyzed.completion_predicates),
        window=analyzed.window,
        strategy=analyzed.strategy,
        partition_by=analyzed.partition_by,
        var_types={v.name: v.event_type for v in analyzed.positives},
        kleene_vars=analyzed.kleene_variable_names(),
        needed_aggregates=aggregates,
        analyzed=analyzed,
    )
