"""Compile an analysed query into a :class:`~repro.engine.nfa.PatternAutomaton`.

Besides the stage-chain compiler, this module owns **hot-path edge
compilation** (:func:`compile_edges`): for every NFA edge the per-spec
interpreter loop — shared-memo routing, context construction, predicate
evaluation, lenient error accounting — is fused into one closure built
once per matcher.  The matcher then dispatches a single call per edge
check instead of re-deciding the routing per predicate per event, and the
:class:`~repro.language.expressions.EvalContext` is materialised at most
once per edge check instead of once per predicate.  Semantics are
byte-identical to the interpreted path (the differential suite flips
``compiled`` and compares emissions and error counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.engine.aggregates import needed_aggregates
from repro.engine.nfa import PatternAutomaton, Stage
from repro.engine.runs import Run
from repro.events.event import Event
from repro.language.ast_nodes import Expr, split_conjuncts
from repro.language.errors import EvaluationError
from repro.language.expressions import EvalContext, evaluate_predicate
from repro.language.fingerprint import canonical_expr
from repro.language.semantics import AnalyzedQuery, PredicateSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.matcher import PatternMatcher
    from repro.runtime.router import SharedExecutionIndex


def compile_automaton(
    analyzed: AnalyzedQuery,
    shared: "SharedExecutionIndex | None" = None,
) -> PatternAutomaton:
    """Build the stage chain and predicate attachments for ``analyzed``.

    With ``shared`` (the engine's :class:`~repro.runtime.router.
    SharedExecutionIndex`), each stage is interned by its canonical chain
    key: queries compiled from a common pattern head reuse the *same*
    stage objects for the shared prefix and fork only at the first
    divergent stage.  Reuse requires identical variable names, element
    types, and canonical predicate chains — semantically equal automaton
    prefixes — so a reused stage's compiled evaluators are sound for every
    query that shares it.
    """
    stages: list[Stage] = []
    for info in analyzed.positives:
        assigned = analyzed.predicates_at.get(info.name, [])
        bind = tuple(p for p in assigned if not p.incremental)
        incremental = tuple(p for p in assigned if p.incremental)
        if info.is_kleene and bind:
            # Semantic analysis never anchors non-incremental predicates at
            # a Kleene variable; guard against regressions loudly.
            raise AssertionError(
                f"non-incremental predicate anchored at Kleene variable {info.name!r}"
            )
        stages.append(
            Stage(
                index=info.position,
                variable=info,
                bind_predicates=bind,
                incremental_predicates=incremental,
            )
        )

    prefix_keys: tuple[str, ...] = ()
    if shared is not None:
        keys: list[str] = []
        chain = ""
        interned: list[Stage] = []
        for stage in stages:
            chain = _stage_key(chain, stage)
            interned.append(shared.intern_stage(chain, stage))
            keys.append(chain)
        stages = interned
        prefix_keys = tuple(keys)

    exprs: list[Expr] = []
    exprs.extend(split_conjuncts(analyzed.ast.where))
    exprs.extend(key.expr for key in analyzed.rank_keys)
    aggregates = needed_aggregates(exprs)

    return PatternAutomaton(
        stages=tuple(stages),
        negations=tuple(analyzed.negations),
        completion_predicates=tuple(analyzed.completion_predicates),
        window=analyzed.window,
        strategy=analyzed.strategy,
        partition_by=analyzed.partition_by,
        var_types={v.name: v.event_type for v in analyzed.positives},
        kleene_vars=analyzed.kleene_variable_names(),
        needed_aggregates=aggregates,
        analyzed=analyzed,
        prefix_keys=prefix_keys,
    )


def _stage_key(prefix: str, stage: Stage) -> str:
    """Canonical chain key for ``stage`` appended to ``prefix``.

    Captures everything stage reuse depends on: the whole prefix (chained
    key), the variable's name (match bindings are keyed by it), element
    type and Kleene-ness, and the ordered canonical forms of the attached
    predicates (order preserved — evaluation order is observable through
    the lenient-error counters).  Variable names of *earlier* stages are
    pinned by the chained prefix, so predicates referencing them need no
    renaming to compare canonically.
    """
    parts = [
        prefix,
        stage.variable.name,
        stage.event_type,
        "kleene" if stage.is_kleene else "single",
        ";".join(canonical_expr(p.expr) for p in stage.bind_predicates),
        ";".join(canonical_expr(p.expr) for p in stage.incremental_predicates),
    ]
    return "\x1f".join(parts)


# ---------------------------------------------------------------------------
# hot-path edge compilation
# ---------------------------------------------------------------------------

#: fused guard over one edge's predicate chain: ``check(run, event)``.
GuardCheck = Callable[[Run, Event], bool]


@dataclass(frozen=True)
class CompiledEdges:
    """Per-matcher fused evaluators, one closure per NFA edge.

    ``bind``/``kleene`` are indexed by stage index; ``negation`` maps
    ``id(negation_spec)`` (the specs are interned on the automaton for the
    matcher's lifetime) to the fused guard over its predicates.  Closures
    read ``matcher.stats`` through the matcher attribute on every call, so
    a checkpoint restore — which replaces the stats object wholesale —
    needs no recompilation hook.
    """

    bind: tuple[GuardCheck, ...]
    kleene: tuple[GuardCheck, ...]
    gate0: Callable[[Event], bool]
    negation: dict[int, GuardCheck]
    completion: Callable[[Run], bool]


def _always_true(run: Run, event: Event) -> bool:
    return True


def _fuse_guard(
    specs: Sequence[PredicateSpec],
    variable: str,
    matcher: "PatternMatcher",
    shared: "SharedExecutionIndex | None",
    lenient: bool,
) -> GuardCheck:
    """Fuse one edge's anchored-predicate loop into a single closure.

    Mirrors ``PatternMatcher._spec_holds`` per spec, in order: a
    fingerprinted (self-contained) predicate consulted for the event
    currently being dispatched is answered from the engine's shared
    per-event memo; everything else evaluates against one lazily built
    run context.  Short-circuits on the first failing predicate, and a
    lenient evaluation error charges ``stats.evaluation_errors`` exactly
    as the interpreted path does.
    """
    if not specs:
        return _always_true

    if shared is None or all(spec.fingerprint is None for spec in specs):
        evaluators = tuple(spec.evaluator for spec in specs)

        def check_local(run: Run, event: Event) -> bool:
            ctx = run.context(current_var=variable, current_event=event)
            for evaluator in evaluators:
                try:
                    if not evaluate_predicate(evaluator, ctx):
                        return False
                except EvaluationError:
                    if not lenient:
                        raise
                    matcher.stats.evaluation_errors += 1
                    return False
            return True

        return check_local

    # (spec-for-shared-routing | None, evaluator) per predicate, in order.
    plan = tuple(
        (spec if spec.fingerprint is not None else None, spec.evaluator)
        for spec in specs
    )

    def check(run: Run, event: Event) -> bool:
        stats = matcher.stats
        memo_live = shared.current_event is event
        ctx: EvalContext | None = None
        for spec, evaluator in plan:
            if spec is not None and memo_live:
                if not shared.predicate_holds(spec, stats, lenient):
                    return False
                continue
            if ctx is None:
                ctx = run.context(current_var=variable, current_event=event)
            try:
                if not evaluate_predicate(evaluator, ctx):
                    return False
            except EvaluationError:
                if not lenient:
                    raise
                stats.evaluation_errors += 1
                return False
        return True

    return check


def _fuse_gate0(
    stage: Stage,
    matcher: "PatternMatcher",
    shared: "SharedExecutionIndex | None",
    lenient: bool,
) -> Callable[[Event], bool]:
    """Stage-0 acceptance check against an empty run context."""
    variable = stage.variable.name
    specs = (
        stage.incremental_predicates if stage.is_kleene else stage.bind_predicates
    )
    evaluators = tuple(spec.evaluator for spec in specs)

    def gate_local(event: Event) -> bool:
        if not evaluators:
            return True
        ctx = EvalContext(
            bindings={}, current_var=variable, current_event=event
        )
        for evaluator in evaluators:
            try:
                if not evaluate_predicate(evaluator, ctx):
                    return False
            except EvaluationError:
                if not lenient:
                    raise
                matcher.stats.evaluation_errors += 1
                return False
        return True

    if shared is None:
        return gate_local

    def gate(event: Event) -> bool:
        # Whole-stage memo: one verdict per (event, stage) across queries.
        if shared.current_event is event:
            return shared.stage_gate(stage, matcher.stats, lenient)
        return gate_local(event)

    return gate


def _fuse_completion(
    specs: Sequence[PredicateSpec], matcher: "PatternMatcher", lenient: bool
) -> Callable[[Run], bool]:
    """Completion-predicate conjunction over one full-run context."""
    evaluators = tuple(spec.evaluator for spec in specs)

    def check(run: Run) -> bool:
        if not evaluators:
            return True
        ctx = run.context()
        for evaluator in evaluators:
            try:
                if not evaluate_predicate(evaluator, ctx):
                    return False
            except EvaluationError:
                if not lenient:
                    raise
                matcher.stats.evaluation_errors += 1
                return False
        return True

    return check


def compile_edges(matcher: "PatternMatcher") -> CompiledEdges:
    """Build the fused per-edge closure table for one matcher.

    Built per matcher (not per shared stage) because the closures fold in
    per-query state: the lenient-error policy, the stats object the error
    counters charge, and the engine's shared index.  Stage objects shared
    across queries via prefix interning keep identical predicate chains,
    so each matcher fusing its own copy preserves the sharing semantics —
    the shared routing happens inside the closures, per consultation.
    """
    automaton = matcher.automaton
    shared = matcher.shared
    lenient = matcher.lenient_errors
    return CompiledEdges(
        bind=tuple(
            _fuse_guard(
                stage.bind_predicates, stage.variable.name, matcher, shared, lenient
            )
            for stage in automaton.stages
        ),
        kleene=tuple(
            _fuse_guard(
                stage.incremental_predicates,
                stage.variable.name,
                matcher,
                shared,
                lenient,
            )
            for stage in automaton.stages
        ),
        gate0=_fuse_gate0(automaton.stages[0], matcher, shared, lenient),
        negation={
            id(negation): _fuse_guard(
                negation.predicates,
                negation.element.variable,
                matcher,
                shared,
                lenient,
            )
            for negation in automaton.negations
        },
        completion=_fuse_completion(
            automaton.completion_predicates, matcher, lenient
        ),
    )
