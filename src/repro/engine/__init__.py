"""The CEP matching engine: SASE+-style NFA-with-buffer evaluation.

Pipeline: an analysed query is compiled into a
:class:`~repro.engine.nfa.PatternAutomaton` by
:func:`~repro.engine.compiler.compile_automaton`, then evaluated over a
stream by a :class:`~repro.engine.matcher.PatternMatcher`, which produces
:class:`~repro.engine.match.Match` records.
"""

from repro.engine.aggregates import AggregateState, needed_aggregates
from repro.engine.compiler import compile_automaton
from repro.engine.explain import explain
from repro.engine.match import Match
from repro.engine.matcher import MatcherStats, PatternMatcher, PruneHook
from repro.engine.nfa import PatternAutomaton, Stage
from repro.engine.partitioner import GLOBAL_KEY, Partitioner
from repro.engine.runs import Run, new_run
from repro.engine.windows import EpochTracker

__all__ = [
    "AggregateState",
    "EpochTracker",
    "GLOBAL_KEY",
    "Match",
    "MatcherStats",
    "PatternAutomaton",
    "PatternMatcher",
    "Partitioner",
    "PruneHook",
    "Run",
    "Stage",
    "compile_automaton",
    "explain",
    "needed_aggregates",
    "new_run",
]
