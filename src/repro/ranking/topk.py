"""Top-k containers used by the rank operator.

Two containers for the two ranking scopes:

* :class:`EpochTopK` — bounded, insert-only; used in tumbling mode
  (``EMIT ON WINDOW CLOSE``), where a match that falls out of the top-k can
  never re-enter (scores within an epoch only accumulate, nothing leaves).
  Exposes the k-th score as the **pruning bound**.
* :class:`SlidingRanking` — unbounded buffer of *live* matches with
  window-driven expiry; used by ``EMIT EVERY`` and ``EMIT EAGER``, where an
  expiring better match can promote previously dominated ones (so nothing
  may be discarded early, and pruning is disabled — see DESIGN.md).
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from typing import Any, Callable, Iterable, Iterator

from repro.engine.match import Match
from repro.language.ast_nodes import WindowKind, WindowSpec


def merge_rankings(
    rankings: Iterable[list[Match]],
    k: int | None = None,
    key: Callable[[Match], tuple[Any, ...]] = Match.sort_key,
) -> list[Match]:
    """K-way merge of already-ordered rankings into one best-first list.

    Each input list must be sorted under ``key`` (smaller = better); the
    merged result is truncated to ``k`` when given.  This is how the
    sharded runtime combines per-shard top-k lists: because every shard
    ranks its own matches with the same comparator, the global top-k is the
    top-k of the merged per-shard top-k lists.
    """
    merged = heapq.merge(*rankings, key=key)
    if k is None:
        return list(merged)
    return list(itertools.islice(merged, k))


class EpochTopK:
    """A bounded best-k set ordered by ``Match.sort_key()`` (min = best)."""

    def __init__(self, k: int | None) -> None:
        self.k = k
        self._keys: list[tuple[Any, ...]] = []
        self._matches: list[Match] = []
        #: matches rejected or evicted because the buffer was full.
        self.discarded = 0

    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self) -> Iterator[Match]:
        return iter(self._matches)

    @property
    def is_full(self) -> bool:
        return self.k is not None and len(self._matches) >= self.k

    def kth_key(self) -> tuple[Any, ...] | None:
        """The current k-th (worst retained) sort key, when full."""
        if not self.is_full or not self._matches:
            return None
        return self._keys[-1]

    def insert(self, match: Match) -> bool:
        """Insert ``match``; returns ``True`` if it is retained."""
        key = match.sort_key()
        if self.is_full and key >= self._keys[-1]:
            self.discarded += 1
            return False
        index = bisect.bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._matches.insert(index, match)
        if self.k is not None and len(self._matches) > self.k:
            self._keys.pop()
            self._matches.pop()
            self.discarded += 1
        return True

    def ranking(self) -> list[Match]:
        """Best-first snapshot."""
        return list(self._matches)


class SlidingRanking:
    """All live matches, with sliding-window expiry and top-k snapshots.

    A match is *live* while the observation point is within the window span
    of its completion: for count windows, ``now_seq - last_seq < span``;
    for time windows, ``now_ts - last_ts <= span``.
    """

    def __init__(self, k: int | None, window: WindowSpec | None) -> None:
        self.k = k
        self.window = window
        self._live: list[Match] = []  # completion order (non-decreasing last_seq)
        self.expired = 0

    def __len__(self) -> int:
        return len(self._live)

    def __iter__(self) -> Iterator[Match]:
        return iter(self._live)

    def insert(self, match: Match) -> None:
        self._live.append(match)

    def expire(self, now_seq: int, now_ts: float) -> int:
        """Drop matches whose completion left the window; returns count."""
        if self.window is None or not self._live:
            return 0
        if self.window.kind is WindowKind.COUNT:
            span = int(self.window.span)
            alive_from = 0
            for alive_from, match in enumerate(self._live):  # noqa: B007
                if now_seq - match.last_seq < span:
                    break
            else:
                alive_from = len(self._live)
        else:
            span = self.window.span
            alive_from = 0
            for alive_from, match in enumerate(self._live):  # noqa: B007
                if now_ts - match.last_ts <= span:
                    break
            else:
                alive_from = len(self._live)
        dropped = alive_from
        if dropped:
            self._live = self._live[alive_from:]
            self.expired += dropped
        return dropped

    def ranking(self) -> list[Match]:
        """Best-first snapshot of the current top-k among live matches."""
        ordered = sorted(self._live, key=Match.sort_key)
        if self.k is not None:
            return ordered[: self.k]
        return ordered
