"""Ranking support — the CEPR contribution.

Scoring (:mod:`~repro.ranking.score`), normalised lexicographic keys
(:mod:`~repro.ranking.keys`), top-k containers (:mod:`~repro.ranking.topk`),
the rank/emission operator (:mod:`~repro.ranking.ranker`), and score-bound
pruning of partial runs (:mod:`~repro.ranking.pruning`).
"""

from repro.ranking.emission import Emission, EmissionKind, snapshot_delta
from repro.ranking.keys import ReversedStr, normalise_bound, normalise_component
from repro.ranking.pruning import PruningStats, ScoreBoundPruner
from repro.ranking.ranker import Ranker
from repro.ranking.score import Scorer
from repro.ranking.skyline import SkylineSet, dominates, pareto_front
from repro.ranking.topk import EpochTopK, SlidingRanking

__all__ = [
    "Emission",
    "EmissionKind",
    "EpochTopK",
    "PruningStats",
    "Ranker",
    "ReversedStr",
    "Scorer",
    "ScoreBoundPruner",
    "SkylineSet",
    "SlidingRanking",
    "dominates",
    "normalise_bound",
    "normalise_component",
    "pareto_front",
    "snapshot_delta",
]
