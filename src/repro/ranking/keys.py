"""Normalised ranking keys.

CEPR orders matches by a lexicographic composite of ``RANK BY`` terms, each
``ASC`` or ``DESC``.  To use plain tuple comparison ("smaller sorts first,
best match = minimum") every term is *normalised*:

* numeric values: kept as-is for ``ASC``, negated for ``DESC``;
* strings: kept for ``ASC``, wrapped in :class:`ReversedStr` (which inverts
  comparison) for ``DESC``.

Ties across all terms break by detection order (appended by
``Match.sort_key``), making every ranking a deterministic total order.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Any

from repro.language.ast_nodes import Direction
from repro.language.errors import EvaluationError


@total_ordering
class ReversedStr:
    """A string that compares in reverse lexicographic order."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReversedStr):
            return NotImplemented
        return self.value == other.value

    def __lt__(self, other: "ReversedStr") -> bool:
        if not isinstance(other, ReversedStr):
            return NotImplemented
        return self.value > other.value

    def __hash__(self) -> int:
        return hash(("ReversedStr", self.value))

    def __repr__(self) -> str:
        return f"ReversedStr({self.value!r})"


def normalise_component(value: Any, direction: Direction) -> Any:
    """Normalise one rank-key value so smaller sorts better."""
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, (int, float)):
        return value if direction is Direction.ASC else -value
    if isinstance(value, str):
        return value if direction is Direction.ASC else ReversedStr(value)
    raise EvaluationError(
        f"RANK BY expressions must produce numbers or strings, got {value!r}"
    )


def normalise_bound(value: float, direction: Direction) -> float:
    """Normalise the *optimistic* end of a numeric interval bound.

    For ``ASC`` the best achievable normalised component is the interval's
    lower end; for ``DESC`` it is the negated upper end.  Callers pass the
    corresponding raw endpoint here.
    """
    return value if direction is Direction.ASC else -value
