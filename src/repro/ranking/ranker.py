"""The rank operator: orders completed matches and drives emission.

One :class:`Ranker` is attached per query.  It consumes the matches
completed at each event (already scored by a
:class:`~repro.ranking.score.Scorer`), maintains the ranking scope
appropriate to the query's emission policy, and returns the
:class:`~repro.ranking.emission.Emission` records triggered by the event.

Policy → scope mapping (see DESIGN.md for the semantics rationale):

* ``EMIT ON WINDOW CLOSE`` → *tumbling*: one bounded
  :class:`~repro.ranking.topk.EpochTopK` per window epoch; the ordered
  answer is released when the epoch closes.  This mode exposes
  :meth:`Ranker.kth_bound` to the pruning hook.
* ``EMIT EVERY n`` → *sliding periodic*: a
  :class:`~repro.ranking.topk.SlidingRanking` of live matches, snapshotted
  every ``n`` events/seconds.
* ``EMIT EAGER`` (ranked) → *sliding eager*: a snapshot whenever the
  current top-k changes (including by expiry).
* ``EMIT EAGER`` (unranked) → classical CEP pass-through: each match is
  emitted the moment it is detected (respecting ``LIMIT`` per epoch).

Unranked queries with ``ON WINDOW CLOSE``/``EVERY`` reuse the ranked
machinery: their sort key degenerates to detection order, so ``LIMIT k``
keeps the first k matches of the scope.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.match import Match
from repro.engine.windows import EpochTracker
from repro.events.event import Event
from repro.language.ast_nodes import EmitKind, WindowKind
from repro.language.errors import EvaluationError
from repro.language.semantics import AnalyzedQuery
from repro.observability.tracing import SpanKind, Tracer
from repro.ranking.emission import Emission, EmissionKind, snapshot_delta
from repro.ranking.score import Scorer
from repro.ranking.topk import EpochTopK, SlidingRanking

_RANK = SpanKind.RANK


class Ranker:
    """Per-query ranking and emission state machine (see module docs)."""

    def __init__(
        self,
        analyzed: AnalyzedQuery,
        scorer: Scorer,
        lenient_errors: bool = False,
    ) -> None:
        self.analyzed = analyzed
        self.scorer = scorer
        self.emit = analyzed.emit
        self.window = analyzed.window
        self.limit = analyzed.limit
        #: When true, a match whose RANK BY keys fail to evaluate is dropped
        #: (and counted) instead of crashing the engine.
        self.lenient_errors = lenient_errors
        self.scoring_errors = 0
        #: Attached by the observability layer when tracing is enabled.
        self.tracer: Tracer | None = None
        self._revision = 0
        self._emissions_count = 0

        self._tumbling = self.emit.kind is EmitKind.ON_WINDOW_CLOSE
        self._passthrough = (
            self.emit.kind is EmitKind.EAGER and not scorer.is_ranked
        )

        if self._tumbling:
            assert self.window is not None  # enforced by semantic analysis
            self._epoch_tracker = EpochTracker(self.window)
            self._epoch_buffers: dict[int, EpochTopK] = {}
            self._current_epoch: int | None = None
        elif self._passthrough:
            self._limit_tracker = (
                EpochTracker(self.window)
                if self.limit is not None and self.window is not None
                else None
            )
            self._limit_epoch: int | None = None
            self._emitted_in_epoch = 0
        else:
            self._sliding = SlidingRanking(self.limit, self.window)
            self._last_snapshot: list[Match] = []
            self._events_since_emit = 0
            self._last_emit_ts: float | None = None

    # -- public API ---------------------------------------------------------------

    @property
    def emissions_count(self) -> int:
        return self._emissions_count

    def inert_without_matches(self) -> bool:
        """True when observing a matchless event cannot change any output.

        The engine's shared-execution fast path skips a query's whole
        operator chain for events that cannot bind a fresh run — but only
        when the ranker, fed that event with zero matches, would provably
        emit nothing *and* end in the same state.  Per mode:

        * pass-through: stateless between matches — always inert.
        * tumbling: inert only with no buffered epochs (an event in a later
          epoch closes buffered ones).
        * ranked EAGER: inert only when both the live set and the last
          snapshot are empty (expiry can shrink the ranking and trigger an
          eager delta emission).
        * ``EMIT EVERY``: never inert — the emission cadence counts every
          observed event (or reads its timestamp), so skipping one would
          shift all later snapshot points.
        """
        if self._passthrough:
            return True
        if self._tumbling:
            return not self._epoch_buffers
        if self.emit.kind is EmitKind.EAGER:
            return not self._sliding and not self._last_snapshot
        return False

    def observe(self, event: Event, matches: Sequence[Match]) -> list[Emission]:
        """Process one event's completions; return triggered emissions."""
        matches = self._score_all(matches)
        if self._tumbling:
            return self._observe_tumbling(event, matches)
        if self._passthrough:
            return self._observe_passthrough(event, matches)
        return self._observe_sliding(event, matches)

    def observe_final(
        self, matches: Sequence[Match], last_seq: int, last_ts: float
    ) -> list[Emission]:
        """Absorb matches confirmed at stream end, then flush.

        Pass-through mode emits the late-confirmed matches directly; the
        buffered modes fold them into the final rankings.
        """
        matches = self._score_all(matches)
        emissions: list[Emission] = []
        if self._passthrough:
            for match in matches:
                self._revision += 1
                self._emissions_count += 1
                emissions.append(
                    Emission(
                        kind=EmissionKind.MATCH,
                        ranking=[match],
                        at_seq=last_seq,
                        at_ts=last_ts,
                        revision=self._revision,
                    )
                )
        elif self._tumbling:
            for match in matches:
                epoch = self._epoch_tracker.epoch_of_point(
                    match.last_seq, match.last_ts
                )
                buffer = self._epoch_buffers.get(epoch)
                if buffer is None:
                    buffer = EpochTopK(self.limit)
                    self._epoch_buffers[epoch] = buffer
                buffer.insert(match)
        else:
            for match in matches:
                self._sliding.insert(match)
        emissions.extend(self.flush(last_seq, last_ts))
        return emissions

    def _score_all(self, matches: Sequence[Match]) -> Sequence[Match]:
        """Score matches, applying the evaluation-error policy."""
        tracer = self.tracer
        if not self.lenient_errors:
            for match in matches:
                self.scorer.score(match)
                if tracer is not None:
                    self._record_rank(tracer, match)
            return matches
        kept: list[Match] = []
        for match in matches:
            try:
                self.scorer.score(match)
            except EvaluationError:
                self.scoring_errors += 1
                continue
            if tracer is not None:
                self._record_rank(tracer, match)
            kept.append(match)
        return kept

    def _record_rank(self, tracer: Tracer, match: Match) -> None:
        tracer.record(
            _RANK,
            match.last_seq,
            match.last_ts,
            self.analyzed.name,
            partition=match.partition_key,
            detection_index=match.detection_index,
            rank_values=match.rank_values,
        )

    def tick(
        self, matches: Sequence[Match], seq: int, timestamp: float
    ) -> list[Emission]:
        """Heartbeat at ``timestamp``: absorb late-confirmed matches and
        release whatever time-based scopes are now due.

        Only time-driven scopes react (time-window tumbling epochs close,
        time-periodic snapshots fire, sliding expiry by time runs);
        count-based scopes need events to advance.
        """
        matches = self._score_all(matches)
        emissions: list[Emission] = []
        if self._tumbling:
            for match in matches:
                epoch = self._epoch_tracker.epoch_of_point(
                    match.last_seq, match.last_ts
                )
                buffer = self._epoch_buffers.get(epoch)
                if buffer is None:
                    buffer = EpochTopK(self.limit)
                    self._epoch_buffers[epoch] = buffer
                buffer.insert(match)
            if self.window is not None and self.window.kind is WindowKind.TIME:
                now_epoch = self._epoch_tracker.epoch_of_point(seq, timestamp)
                for epoch in sorted(
                    e for e in self._epoch_buffers if e < now_epoch
                ):
                    emissions.append(
                        self._close_epoch(epoch, seq, timestamp, final=False)
                    )
            return emissions
        if self._passthrough:
            for match in matches:
                self._revision += 1
                self._emissions_count += 1
                emissions.append(
                    Emission(
                        kind=EmissionKind.MATCH,
                        ranking=[match],
                        at_seq=seq,
                        at_ts=timestamp,
                        revision=self._revision,
                    )
                )
            return emissions
        # sliding scopes: expire by time, then check time-driven policies
        if self.window is not None and self.window.kind is WindowKind.TIME:
            self._sliding.expire(seq, timestamp)
        for match in matches:
            self._sliding.insert(match)
        if self.emit.kind is EmitKind.EAGER:
            ranking = self._sliding.ranking()
            if [m.detection_index for m in ranking] != [
                m.detection_index for m in self._last_snapshot
            ]:
                snapshot = self._make_snapshot(
                    EmissionKind.EAGER, ranking, seq, timestamp
                )
                if snapshot is not None:
                    emissions.append(snapshot)
            return emissions
        if (
            self.emit.period_kind is WindowKind.TIME
            and self._last_emit_ts is not None
            and timestamp - self._last_emit_ts >= (self.emit.period or 0)
        ):
            self._last_emit_ts = timestamp
            snapshot = self._make_snapshot(
                EmissionKind.PERIODIC, self._sliding.ranking(), seq, timestamp
            )
            if snapshot is not None:
                emissions.append(snapshot)
        return emissions

    def flush(self, last_seq: int, last_ts: float) -> list[Emission]:
        """Stream end: release whatever the policy still holds."""
        if self._tumbling:
            emissions = []
            for epoch in sorted(self._epoch_buffers):
                emissions.append(
                    self._close_epoch(epoch, last_seq, last_ts, final=True)
                )
            self._epoch_buffers.clear()
            return emissions
        if self._passthrough:
            return []
        ranking = self._sliding.ranking()
        if not ranking:
            return []
        emission = self._make_snapshot(
            EmissionKind.FINAL, ranking, last_seq, last_ts
        )
        return [emission] if emission is not None else []

    def open_epochs(self) -> tuple[int, ...]:
        """Tumbling epochs still buffered (not yet released), ascending.

        The sharded runtime's merge stage uses this at barrier points to
        know which epochs a shard may still contribute matches to; other
        emission modes always return ``()``.
        """
        if not self._tumbling:
            return ()
        return tuple(sorted(self._epoch_buffers))

    def kth_bound_for_epoch(self, epoch: int) -> tuple | None:
        """The pruning bound for runs completing in ``epoch``.

        Only tumbling mode has a sound bound (DESIGN.md), and a run may
        only be compared against the k-th score of the epoch it will
        complete in — a fresh epoch has no bound yet, so runs created at an
        epoch boundary are never pruned against the previous epoch's heap.
        Other modes return ``None``, which disables pruning.
        """
        if not self._tumbling:
            return None
        buffer = self._epoch_buffers.get(epoch)
        if buffer is None:
            return None
        return buffer.kth_key()

    # -- checkpointing --------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe snapshot of the emission state machine.

        Matches are stored without their scores (see
        :mod:`repro.engine.snapshot`); :meth:`restore` re-scores them,
        which is deterministic because scores are pure functions of the
        bindings.
        """
        from repro.engine.snapshot import encode_match

        state: dict = {
            "revision": self._revision,
            "emissions_count": self._emissions_count,
            "scoring_errors": self.scoring_errors,
        }
        if self._tumbling:
            state["mode"] = "tumbling"
            state["current_epoch"] = self._current_epoch
            state["epochs"] = {
                str(epoch): {
                    "matches": [encode_match(m) for m in buffer.ranking()],
                    "discarded": buffer.discarded,
                }
                for epoch, buffer in self._epoch_buffers.items()
            }
        elif self._passthrough:
            state["mode"] = "passthrough"
            state["limit_epoch"] = self._limit_epoch
            state["emitted_in_epoch"] = self._emitted_in_epoch
        else:
            state["mode"] = "sliding"
            state["live"] = [encode_match(m) for m in self._sliding]
            state["expired"] = self._sliding.expired
            state["last_snapshot"] = [
                encode_match(m) for m in self._last_snapshot
            ]
            state["events_since_emit"] = self._events_since_emit
            state["last_emit_ts"] = self._last_emit_ts
        return state

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (freshly constructed) ranker."""
        from repro.engine.snapshot import SnapshotFormatError, decode_match

        mode = (
            "tumbling"
            if self._tumbling
            else "passthrough" if self._passthrough else "sliding"
        )
        if state.get("mode") != mode:
            raise SnapshotFormatError(
                f"ranker mode mismatch: snapshot is {state.get('mode')!r}, "
                f"query needs {mode!r}"
            )

        def rescore(item: dict) -> Match:
            return self.scorer.score(decode_match(item))

        self._revision = int(state["revision"])
        self._emissions_count = int(state["emissions_count"])
        self.scoring_errors = int(state["scoring_errors"])
        if self._tumbling:
            self._current_epoch = state["current_epoch"]
            self._epoch_buffers = {}
            for key, item in state["epochs"].items():
                buffer = EpochTopK(self.limit)
                # Stored best-first and within capacity, so re-inserting
                # cannot evict; the discard count carries over verbatim.
                for encoded in item["matches"]:
                    buffer.insert(rescore(encoded))
                buffer.discarded = int(item["discarded"])
                self._epoch_buffers[int(key)] = buffer
        elif self._passthrough:
            self._limit_epoch = state["limit_epoch"]
            self._emitted_in_epoch = int(state["emitted_in_epoch"])
        else:
            self._sliding = SlidingRanking(self.limit, self.window)
            for encoded in state["live"]:
                self._sliding.insert(rescore(encoded))
            self._sliding.expired = int(state["expired"])
            self._last_snapshot = [
                rescore(encoded) for encoded in state["last_snapshot"]
            ]
            self._events_since_emit = int(state["events_since_emit"])
            self._last_emit_ts = state["last_emit_ts"]

    # -- tumbling -------------------------------------------------------------------

    def _observe_tumbling(
        self, event: Event, matches: Sequence[Match]
    ) -> list[Emission]:
        for match in matches:
            epoch = self._epoch_tracker.epoch_of_point(match.last_seq, match.last_ts)
            buffer = self._epoch_buffers.get(epoch)
            if buffer is None:
                buffer = EpochTopK(self.limit)
                self._epoch_buffers[epoch] = buffer
            buffer.insert(match)

        event_epoch = self._epoch_tracker.epoch_of(event)
        emissions: list[Emission] = []
        for epoch in sorted(e for e in self._epoch_buffers if e < event_epoch):
            emissions.append(
                self._close_epoch(epoch, event.seq, event.timestamp, final=False)
            )
        self._current_epoch = event_epoch
        return emissions

    def _close_epoch(
        self, epoch: int, at_seq: int, at_ts: float, final: bool
    ) -> Emission:
        buffer = self._epoch_buffers.pop(epoch)
        self._revision += 1
        self._emissions_count += 1
        return Emission(
            kind=EmissionKind.WINDOW_CLOSE,
            ranking=buffer.ranking(),
            at_seq=at_seq,
            at_ts=at_ts,
            epoch=epoch,
            revision=self._revision,
        )

    # -- pass-through (unranked EAGER) -------------------------------------------------

    def _observe_passthrough(
        self, event: Event, matches: Sequence[Match]
    ) -> list[Emission]:
        emissions: list[Emission] = []
        if self._limit_tracker is not None:
            epoch = self._limit_tracker.epoch_of(event)
            if epoch != self._limit_epoch:
                self._limit_epoch = epoch
                self._emitted_in_epoch = 0
        for match in matches:
            if self.limit is not None and self._limit_tracker is not None:
                if self._emitted_in_epoch >= self.limit:
                    continue
                self._emitted_in_epoch += 1
            self._revision += 1
            self._emissions_count += 1
            emissions.append(
                Emission(
                    kind=EmissionKind.MATCH,
                    ranking=[match],
                    at_seq=event.seq,
                    at_ts=event.timestamp,
                    revision=self._revision,
                )
            )
        return emissions

    # -- sliding (EVERY / ranked EAGER) --------------------------------------------------

    def _observe_sliding(
        self, event: Event, matches: Sequence[Match]
    ) -> list[Emission]:
        self._sliding.expire(event.seq, event.timestamp)
        for match in matches:
            self._sliding.insert(match)

        if self.emit.kind is EmitKind.EAGER:
            ranking = self._sliding.ranking()
            if [m.detection_index for m in ranking] == [
                m.detection_index for m in self._last_snapshot
            ]:
                return []
            emission = self._make_snapshot(
                EmissionKind.EAGER, ranking, event.seq, event.timestamp
            )
            return [emission] if emission is not None else []

        # EMIT EVERY n EVENTS / t <unit>
        assert self.emit.period is not None
        due = False
        if self.emit.period_kind is WindowKind.COUNT:
            self._events_since_emit += 1
            if self._events_since_emit >= int(self.emit.period):
                due = True
                self._events_since_emit = 0
        else:
            if self._last_emit_ts is None:
                self._last_emit_ts = event.timestamp
            elif event.timestamp - self._last_emit_ts >= self.emit.period:
                due = True
                self._last_emit_ts = event.timestamp
        if not due:
            return []
        emission = self._make_snapshot(
            EmissionKind.PERIODIC, self._sliding.ranking(), event.seq, event.timestamp
        )
        return [emission] if emission is not None else []

    def _make_snapshot(
        self,
        kind: EmissionKind,
        ranking: list[Match],
        at_seq: int,
        at_ts: float,
    ) -> Emission | None:
        entered, exited = snapshot_delta(self._last_snapshot, ranking)
        self._last_snapshot = ranking
        self._revision += 1
        self._emissions_count += 1
        return Emission(
            kind=kind,
            ranking=ranking,
            at_seq=at_seq,
            at_ts=at_ts,
            revision=self._revision,
            entered=entered,
            exited=exited,
        )
