"""Scoring: evaluate ``RANK BY`` keys over completed matches."""

from __future__ import annotations

from typing import Sequence

from repro.engine.match import Match
from repro.language.errors import EvaluationError
from repro.language.expressions import EvalContext
from repro.language.semantics import CompiledRankKey
from repro.ranking.keys import normalise_component


class Scorer:
    """Computes and attaches the normalised score of each match.

    ``score(match)`` fills ``match.rank_values`` (raw values, user order)
    and ``match.score`` (normalised comparator tuple: smaller = better) and
    returns the match for chaining.
    """

    def __init__(self, rank_keys: Sequence[CompiledRankKey]) -> None:
        self.rank_keys = tuple(rank_keys)

    @property
    def is_ranked(self) -> bool:
        return bool(self.rank_keys)

    def score(self, match: Match) -> Match:
        if not self.rank_keys:
            match.score = ()
            match.rank_values = ()
            return match
        ctx = EvalContext(bindings=match.bindings)
        raw = []
        normalised = []
        for key in self.rank_keys:
            try:
                value = key.evaluator(ctx)
            except EvaluationError as exc:
                raise EvaluationError(
                    f"failed to evaluate RANK BY key over a match: {exc}"
                ) from exc
            raw.append(value)
            normalised.append(normalise_component(value, key.direction))
        match.rank_values = tuple(raw)
        match.score = tuple(normalised)
        return match
