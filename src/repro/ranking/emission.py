"""Emission records produced by the rank operator.

Every release of results is an :class:`Emission`: an ordered list of
matches plus provenance (which policy fired, at which stream point, which
revision).  ``EAGER`` mode may emit several revisions of the same scope;
``entered``/``exited`` record the delta against the previous snapshot so a
UI can highlight changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.engine.match import Match


class EmissionKind(Enum):
    """Why an emission was released (which policy fired)."""

    #: a single unranked match, emitted on detection.
    MATCH = "match"
    #: the ordered answer of one closed tumbling epoch.
    WINDOW_CLOSE = "window_close"
    #: a periodic snapshot (EMIT EVERY).
    PERIODIC = "periodic"
    #: an eager snapshot, emitted because the top-k changed.
    EAGER = "eager"
    #: final snapshot at stream end.
    FINAL = "final"


@dataclass
class Emission:
    """One release of (ranked) results."""

    kind: EmissionKind
    ranking: list[Match]
    at_seq: int
    at_ts: float
    #: tumbling epoch index for WINDOW_CLOSE emissions.
    epoch: int | None = None
    #: monotone revision counter within the query (eager/periodic scopes).
    revision: int = 0
    #: matches that entered the top-k relative to the previous snapshot.
    entered: list[Match] = field(default_factory=list)
    #: matches that left the top-k relative to the previous snapshot.
    exited: list[Match] = field(default_factory=list)

    @property
    def top(self) -> Match | None:
        return self.ranking[0] if self.ranking else None

    def describe(self) -> str:
        lines = [f"[{self.kind.value} rev={self.revision} t={self.at_ts:g}]"]
        for position, match in enumerate(self.ranking, start=1):
            lines.append(f"  #{position} {match.describe()}")
        return "\n".join(lines)


def snapshot_delta(
    previous: list[Match], current: list[Match]
) -> tuple[list[Match], list[Match]]:
    """Compute (entered, exited) by detection index between two snapshots."""
    prev_ids = {m.detection_index for m in previous}
    cur_ids = {m.detection_index for m in current}
    entered = [m for m in current if m.detection_index not in prev_ids]
    exited = [m for m in previous if m.detection_index not in cur_ids]
    return entered, exited
