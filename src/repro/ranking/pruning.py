"""Score-bound pruning of partial runs — CEPR's ranking-aware optimisation.

The naive way to answer a ranked pattern query is *match-then-rank*: run a
classical CEP engine, materialise every match, sort, cut to k.  CEPR
instead integrates the top-k operator with the run manager: whenever the
matcher is about to keep a partial run, the :class:`ScoreBoundPruner`
bounds the best score any completion of that run could achieve (interval
arithmetic over the primary ``RANK BY`` expression, using exact values for
bound variables and schema-declared domains for unbound ones) and discards
the run if that optimistic bound is *strictly worse* than the current k-th
retained score.  Strictness keeps the optimisation exact: a run whose best
possible primary key merely ties the k-th could still win on a secondary
key or tie-breaking, so it is kept.

Soundness requires that the k-th score can only improve while the run is
alive, which holds in tumbling mode (``EMIT ON WINDOW CLOSE``): matches
only accumulate within an epoch, and runs never cross epoch boundaries.
Sliding scopes let good matches *expire*, which could resurrect a pruned
run's chances, so there the ranker's
:meth:`~repro.ranking.ranker.Ranker.kth_bound_for_epoch` returns ``None``
and pruning self-disables.  Within tumbling mode, a run is only compared
against the heap of the epoch it will complete in (the epoch of its first
event): runs born at an epoch boundary face an empty heap, never the
previous epoch's scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.runs import Run
from repro.engine.windows import EpochTracker
from repro.events.event import Event
from repro.events.schema import Domain, SchemaRegistry
from repro.language.ast_nodes import Direction
from repro.language.intervals import IntervalEvaluator
from repro.language.semantics import AnalyzedQuery
from repro.ranking.keys import normalise_bound

#: Supplies the k-th retained (normalised) sort key of one tumbling epoch,
#: or ``None`` when that epoch's heap is absent or not yet full.
BoundProvider = Callable[[int], tuple | None]
DomainLookup = Callable[[str, str], Domain | None]


@dataclass
class PruningStats:
    """Book-keeping for the pruning experiments (E3)."""

    attempts: int = 0
    pruned: int = 0
    no_bound_available: int = 0  # heap not full yet
    unbounded_expression: int = 0  # interval evaluation returned None

    @property
    def prune_rate(self) -> float:
        return self.pruned / self.attempts if self.attempts else 0.0


class ScoreBoundPruner:
    """The prune hook installed into the matcher (see module docs)."""

    def __init__(
        self,
        analyzed: AnalyzedQuery,
        domain_of: DomainLookup,
        bound_provider: BoundProvider,
    ) -> None:
        if not analyzed.rank_keys:
            raise ValueError("score-bound pruning requires a RANK BY clause")
        if analyzed.window is None:
            raise ValueError("score-bound pruning requires a WITHIN window")
        self.primary = analyzed.rank_keys[0]
        self.domain_of = domain_of
        self.bound_provider = bound_provider
        self.stats = PruningStats()
        # In tumbling mode runs never cross epoch boundaries, so a run
        # completes (if ever) in the epoch of its first event — that epoch's
        # heap is the only sound pruning reference.
        self._epochs = EpochTracker(analyzed.window)

    @classmethod
    def from_registry(
        cls,
        analyzed: AnalyzedQuery,
        registry: SchemaRegistry | None,
        bound_provider: BoundProvider,
    ) -> "ScoreBoundPruner":
        if registry is None:
            domain_of: DomainLookup = lambda _t, _a: None
        else:
            domain_of = registry.domain_of
        return cls(analyzed, domain_of, bound_provider)

    def __call__(self, run: Run, event: Event) -> bool:
        """``True`` ⇒ the matcher discards this partial run."""
        self.stats.attempts += 1
        run_epoch = self._epochs.epoch_of_point(run.first_seq, run.first_ts)
        status, headroom = self._headroom(run_epoch, run, event)
        if status == "no_bound":
            self.stats.no_bound_available += 1
            return False
        if status == "unbounded":
            self.stats.unbounded_expression += 1
            return False
        if status != "ok":
            return False
        assert headroom is not None
        if headroom > 0:
            self.stats.pruned += 1
            return True
        return False

    def event_headroom(
        self, run: Run, event: Event, seq: int | None = None
    ) -> float | None:
        """Normalised slack between ``run``'s best possible primary key and
        the k-th retained key of the epoch ``event`` lands in.

        The shedding controller calls this with a hypothetical stage-0 run
        to certify dropping ``event``: a **positive** value proves no
        completion of that run could strictly beat the current k-th (the
        same strict comparison :meth:`__call__` uses, so ties that could
        still win on secondary keys are never certified).  ``None`` means
        no usable bound exists (heap not full, non-numeric primary, or an
        unbounded expression) — the caller must keep the event.  ``seq``
        overrides the event's own sequence number for count-window epoch
        placement when the event has not been sequenced yet (the runner's
        pre-ingest sampling path); certification there is advisory only.
        """
        point_seq = event.seq if seq is None else seq
        epoch = self._epochs.epoch_of_point(point_seq, event.timestamp)
        status, headroom = self._headroom(epoch, run, event)
        return headroom if status == "ok" else None

    def _headroom(
        self, epoch: int, run: Run, event: Event
    ) -> tuple[str, float | None]:
        """Core bound evaluation: ``(status, best_possible - kth_primary)``.

        Normalised keys sort ascending-is-better, so a positive headroom
        means the run is strictly worse than the k-th retained score no
        matter how it completes.
        """
        kth = self.bound_provider(epoch)
        if kth is None:
            return "no_bound", None
        kth_primary = kth[0]
        if isinstance(kth_primary, bool) or not isinstance(kth_primary, (int, float)):
            return "non_numeric", None  # string-keyed: no interval reasoning

        view = run.partial_view(self.domain_of, event.timestamp)
        interval = IntervalEvaluator(view).bound(self.primary.expr)
        if interval is None:
            return "unbounded", None
        optimistic_raw = (
            interval.lo if self.primary.direction is Direction.ASC else interval.hi
        )
        best_possible = normalise_bound(optimistic_raw, self.primary.direction)
        return "ok", best_possible - kth_primary
