"""Skyline (Pareto-front) ranking — a multi-criteria extension.

Lexicographic ``RANK BY`` imposes a total order: the second key only breaks
ties on the first.  When criteria are genuinely incomparable — maximise
profit *and* minimise duration — the natural "best" answers are the
**Pareto front**: matches not dominated on every criterion by any other
match.  This module provides that semantics over scored matches, as the
kind of future-work extension a ranking-CEP system grows into:

>>> front = pareto_front(query.matches(), query.analyzed.rank_keys)

Matches must already carry ``rank_values`` (the Scorer fills them); each
``RANK BY`` direction says which way is better for that criterion (``DESC``
= larger is better).  :class:`SkylineSet` maintains the front incrementally
as matches stream in.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.engine.match import Match
from repro.language.ast_nodes import Direction
from repro.language.errors import EvaluationError
from repro.language.semantics import CompiledRankKey


def _oriented(values: Sequence[Any], directions: Sequence[Direction]) -> tuple[float, ...]:
    """Rewrite criterion values so that larger is always better."""
    if len(values) != len(directions):
        raise ValueError(
            f"match has {len(values)} rank values but {len(directions)} "
            f"directions were given"
        )
    oriented = []
    for value, direction in zip(values, directions):
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            raise EvaluationError(
                f"skyline criteria must be numeric, got {value!r}"
            )
        oriented.append(value if direction is Direction.DESC else -value)
    return tuple(oriented)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether oriented vector ``a`` dominates ``b``.

    ``a`` dominates ``b`` when it is at least as good on every criterion
    and strictly better on at least one.
    """
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def _directions_of(keys: Sequence[CompiledRankKey | Direction]) -> list[Direction]:
    return [k if isinstance(k, Direction) else k.direction for k in keys]


def pareto_front(
    matches: Iterable[Match],
    keys: Sequence[CompiledRankKey | Direction],
) -> list[Match]:
    """The non-dominated subset of ``matches``, in detection order.

    ``keys`` supplies one direction per rank value — pass a query's
    ``analyzed.rank_keys`` or a plain list of :class:`Direction`.
    Duplicate criterion vectors all stay on the front (none dominates the
    others).
    """
    directions = _directions_of(keys)
    candidates = [
        (match, _oriented(match.rank_values, directions)) for match in matches
    ]
    front: list[tuple[Match, tuple[float, ...]]] = []
    for match, vector in candidates:
        if any(dominates(other, vector) for _m, other in candidates):
            continue
        front.append((match, vector))
    front.sort(key=lambda pair: pair[0].detection_index)
    return [match for match, _v in front]


class SkylineSet:
    """Incrementally maintained Pareto front of scored matches.

    ``insert`` is O(front size); a dominated insert is rejected, a
    dominating insert evicts what it dominates.
    """

    def __init__(self, keys: Sequence[CompiledRankKey | Direction]) -> None:
        self.directions = _directions_of(keys)
        self._front: list[tuple[Match, tuple[float, ...]]] = []
        self.rejected = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._front)

    def __iter__(self):
        return (match for match, _v in self._front)

    def insert(self, match: Match) -> bool:
        """Add ``match``; returns ``True`` if it joins the front."""
        vector = _oriented(match.rank_values, self.directions)
        if any(dominates(other, vector) for _m, other in self._front):
            self.rejected += 1
            return False
        survivors = [
            (m, v) for m, v in self._front if not dominates(vector, v)
        ]
        self.evicted += len(self._front) - len(survivors)
        survivors.append((match, vector))
        self._front = survivors
        return True

    def front(self) -> list[Match]:
        """Current front, in detection order."""
        ordered = sorted(self._front, key=lambda pair: pair[0].detection_index)
        return [match for match, _v in ordered]
