"""Command-line interface: ``python -m repro <command>``.

Five commands:

* ``validate`` — parse and analyse a query file, print its evaluation plan.
* ``lint`` — statically analyse query files and report coded diagnostics
  (type errors, unsatisfiable predicates, unused bindings, shardability);
  ``--json`` for machine-readable output, ``--schema registry.json`` to
  enable schema-aware checks.  Exits non-zero when any error is found.
* ``run`` — evaluate one or more query files over a recorded event stream
  (JSONL or CSV), printing ranked results as text or JSON lines.
* ``backtest`` — replay a time slice of a recorded event log against one
  or more candidate queries and compare their result counts.
* ``demo`` — generate a seeded synthetic workload to a JSONL file, for use
  with ``run``/``backtest``.

``run`` and ``backtest`` print analyzer warnings for each query to stderr
at startup (results on stdout are unaffected).

Examples::

    python -m repro demo stock --events 10000 --out ticks.jsonl
    python -m repro lint query.ceprql --schema registry.json
    python -m repro run query.ceprql --events ticks.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, TextIO

from repro.events.event import Event
from repro.events.sources import CSVSource, JSONLSource, write_jsonl
from repro.language.errors import CEPRError
from repro.ranking.emission import Emission
from repro.runtime.engine import CEPREngine
from repro.runtime.serialize import emission_to_line
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.generic import GenericWorkload
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import StockWorkload
from repro.workloads.traffic import TrafficWorkload

_WORKLOADS = {
    "clickstream": ClickstreamWorkload,
    "stock": StockWorkload,
    "vitals": VitalsWorkload,
    "traffic": TrafficWorkload,
    "generic": GenericWorkload,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CEPR: ranked pattern matching over event streams",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="parse a query file and print its evaluation plan"
    )
    validate.add_argument("query_files", nargs="+", type=Path)

    lint = commands.add_parser(
        "lint", help="statically analyse query files and report diagnostics"
    )
    lint.add_argument("query_files", nargs="+", type=Path)
    lint.add_argument(
        "--schema",
        type=Path,
        default=None,
        help="JSON schema registry enabling type and domain checks",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit diagnostics as JSON instead of text",
    )

    run = commands.add_parser("run", help="run queries over a recorded stream")
    run.add_argument("query_files", nargs="+", type=Path)
    run.add_argument(
        "--events", required=True, type=Path, help="JSONL or CSV event file"
    )
    run.add_argument(
        "--output",
        choices=("text", "jsonl"),
        default="text",
        help="result rendering (default: text)",
    )
    run.add_argument(
        "--no-pruning",
        action="store_true",
        help="disable score-bound pruning (ablation)",
    )
    run.add_argument(
        "--stats", action="store_true", help="print per-query statistics at the end"
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run partitioned queries across N worker shards (default: 1)",
    )

    backtest = commands.add_parser(
        "backtest", help="replay a slice of a recorded event log"
    )
    backtest.add_argument("query_files", nargs="+", type=Path)
    backtest.add_argument(
        "--log", required=True, type=Path, help="JSONL event log (see `demo`)"
    )
    backtest.add_argument("--start", type=float, default=None, help="slice start ts")
    backtest.add_argument("--end", type=float, default=None, help="slice end ts")
    backtest.add_argument("--no-pruning", action="store_true")
    backtest.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="replay partitioned queries across N worker shards (default: 1)",
    )

    demo = commands.add_parser("demo", help="generate a synthetic workload")
    demo.add_argument("workload", choices=sorted(_WORKLOADS))
    demo.add_argument("--events", type=int, default=10_000)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--out", required=True, type=Path)

    return parser


def main(argv: list[str] | None = None, out: TextIO = sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "validate":
            return _cmd_validate(args, out)
        if args.command == "lint":
            return _cmd_lint(args, out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "backtest":
            return _cmd_backtest(args, out)
        return _cmd_demo(args, out)
    except BrokenPipeError:
        # downstream consumer (e.g. `| head`) closed the pipe: not an error
        return 0
    except CEPRError as exc:
        print(f"error: {exc}", file=out)
        return 1
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 1


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def _cmd_validate(args: argparse.Namespace, out: TextIO) -> int:
    engine = CEPREngine()
    for path in args.query_files:
        handle = engine.register_query(path.read_text(), name=path.stem)
        print(f"-- {path} --", file=out)
        print(handle.explain(), file=out)
    print(f"{len(args.query_files)} query file(s) valid", file=out)
    return 0


def _cmd_lint(args: argparse.Namespace, out: TextIO) -> int:
    import json

    from repro.events.schema import load_registry
    from repro.language.analysis import Severity, lint_text

    registry = load_registry(args.schema) if args.schema is not None else None
    reports = []
    errors = warnings = 0
    for path in args.query_files:
        diagnostics = lint_text(path.read_text(), registry)
        reports.append((path, diagnostics))
        errors += sum(1 for d in diagnostics if d.severity is Severity.ERROR)
        warnings += sum(1 for d in diagnostics if d.severity is Severity.WARNING)

    if args.json:
        payload = [
            {"file": str(path), "diagnostics": [d.to_dict() for d in diags]}
            for path, diags in reports
        ]
        print(json.dumps(payload, indent=2), file=out)
        return 1 if errors else 0

    for path, diags in reports:
        if not diags:
            print(f"{path}: clean", file=out)
            continue
        print(f"{path}:", file=out)
        for diagnostic in diags:
            print("  " + diagnostic.format().replace("\n", "\n  "), file=out)
    total = errors + warnings
    if total:
        print(f"{total} problem(s) ({errors} error(s), {warnings} warning(s))", file=out)
    else:
        print("no problems", file=out)
    return 1 if errors else 0


def _report_diagnostics(label: str, diagnostics) -> None:
    """Print non-info analyzer findings to stderr (stdout carries results)."""
    from repro.language.analysis import Severity

    for diagnostic in diagnostics:
        if diagnostic.severity is Severity.INFO:
            continue
        print(
            f"{diagnostic.severity.value}: {label}: {diagnostic.code} "
            f"[{diagnostic.span}] {diagnostic.message}",
            file=sys.stderr,
        )


def _load_events(path: Path) -> Iterable[Event]:
    suffix = path.suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        return JSONLSource(path)
    if suffix == ".csv":
        return CSVSource(path)
    raise ValueError(f"unsupported event file {path}: expected .jsonl or .csv")


def _cmd_run(args: argparse.Namespace, out: TextIO) -> int:
    if args.shards < 1:
        raise ValueError(f"--shards must be >= 1, got {args.shards}")
    if args.shards > 1:
        return _cmd_run_sharded(args, out)
    engine = CEPREngine(enable_pruning=not args.no_pruning)
    handles = []
    for path in args.query_files:
        handle = engine.register_query(path.read_text(), name=path.stem)
        _report_diagnostics(str(path), handle.diagnostics)
        handles.append(handle)

    emission_count = 0
    for event in _load_events(args.events):
        for emission in engine.push(event):
            emission_count += 1
            _render(emission, args.output, out)
    for emission in engine.flush():
        emission_count += 1
        _render(emission, args.output, out)

    if args.stats:
        _print_stats(engine.stats_by_query(), out)
    if emission_count == 0 and args.output == "text":
        print("(no results)", file=out)
    return 0


def _cmd_run_sharded(args: argparse.Namespace, out: TextIO) -> int:
    from repro.language.analysis import run_analysis
    from repro.runtime.sharded import ShardedEngineRunner

    emission_count = 0

    def render(emission: Emission) -> None:
        nonlocal emission_count
        emission_count += 1
        _render(emission, args.output, out)

    runner = ShardedEngineRunner(
        shards=args.shards,
        enable_pruning=not args.no_pruning,
        on_emission=render,
    )
    for path in args.query_files:
        view = runner.register_query(path.read_text(), name=path.stem)
        _report_diagnostics(str(path), run_analysis(view.analyzed))
    runner.start()
    try:
        runner.submit_all(_load_events(args.events))
        runner.flush()
    finally:
        runner.stop()

    if args.stats:
        _print_stats(runner.stats_by_query(), out)
    if emission_count == 0 and args.output == "text":
        print("(no results)", file=out)
    return 0


def _print_stats(stats_by_query: dict, out: TextIO) -> None:
    print("-- statistics --", file=out)
    for name, stats in stats_by_query.items():
        print(
            f"  {name}: events={stats['events_routed']:.0f} "
            f"matches={stats['matches']:.0f} "
            f"emissions={stats['emissions']:.0f} "
            f"pruned={stats['runs_pruned']:.0f}",
            file=out,
        )


def _cmd_backtest(args: argparse.Namespace, out: TextIO) -> int:
    from repro.store.backtest import Backtester
    from repro.store.log import EventLog

    log = EventLog(args.log)
    if len(log) == 0:
        print(f"error: event log {args.log} is empty", file=out)
        return 1
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=out)
        return 1
    backtester = Backtester(
        log, enable_pruning=not args.no_pruning, shards=args.shards
    )
    from repro.language.analysis import lint_text

    queries = {}
    for path in args.query_files:
        text = path.read_text()
        _report_diagnostics(str(path), lint_text(text))
        queries[path.stem] = text
    results = backtester.compare(queries, start_ts=args.start, end_ts=args.end)
    lo, hi = log.time_range
    window = f"[{args.start if args.start is not None else lo:g}, "              f"{args.end if args.end is not None else hi:g})"
    print(f"backtest over {window} of {len(log)} recorded events:", file=out)
    for name, result in sorted(results.items(), key=lambda kv: -kv[1].matches):
        best = (
            f"best {result.final_ranking[0].rank_values}"
            if result.final_ranking and result.final_ranking[0].rank_values
            else ""
        )
        print(
            f"  {name}: {result.matches} matches over "
            f"{result.events_replayed} events {best}".rstrip(),
            file=out,
        )
    return 0


def _cmd_demo(args: argparse.Namespace, out: TextIO) -> int:
    workload = _WORKLOADS[args.workload](seed=args.seed)
    count = write_jsonl(args.out, workload.events(args.events))
    print(f"wrote {count} {args.workload} events to {args.out}", file=out)
    return 0


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _render(emission: Emission, mode: str, out: TextIO) -> None:
    if mode == "text":
        print(_prefix(emission) + emission.describe(), file=out)
        return
    print(emission_to_line(emission), file=out)


def _prefix(emission: Emission) -> str:
    query = emission.ranking[0].query_name if emission.ranking else None
    return f"[{query}] " if query else ""


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
