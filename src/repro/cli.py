"""Command-line interface: ``python -m repro <command>``.

Ten commands:

* ``validate`` — parse and analyse a query file, print its evaluation plan.
* ``lint`` — statically analyse query files and report coded diagnostics
  (type errors, unsatisfiable predicates, unused bindings, shardability);
  ``--json`` for machine-readable output, ``--schema registry.json`` to
  enable schema-aware checks.  Exits non-zero when any error is found.
* ``run`` — evaluate one or more query files over a recorded event stream
  (JSONL or CSV), printing ranked results as text or JSON lines.
* ``serve`` — expose queries over TCP (``repro.serve``): clients push
  events and subscribe to ranked emissions through the frame protocol
  documented in docs/SERVING.md; SIGTERM drains gracefully.
* ``stats`` — replay a stream and export the engine's metrics registry as
  Prometheus text (``--prom``), JSON (``--json``), or a plain table;
  ``--watch`` renders the live monitor (with the composite pressure
  score) while the replay runs; ``--connect HOST:PORT`` fetches the
  registry from a running ``serve`` instance instead of replaying.
* ``top`` — per-query cost accounts ranked most-expensive-first (CPU,
  routed events), from a replay or live from a running ``serve``
  instance (``--connect``, optionally ``--watch``).
* ``trace`` — replay a stream with span tracing enabled and print the full
  provenance of an emission (events bound per variable, rank keys, and the
  run-lifecycle competition that led to it); ``--connect`` asks a running
  ``serve`` instance instead and includes the remote trace contexts
  stamped by clients (docs/OBSERVABILITY.md).
* ``flightrec`` — inspect black-box flight-recorder artifacts (``list``,
  ``show``) or signal a running ``serve --flightrec`` process to dump one
  on demand (``dump``).
* ``backtest`` — replay a time slice of a recorded event log against one
  or more candidate queries and compare their result counts.
* ``demo`` — generate a seeded synthetic workload to a JSONL file, for use
  with ``run``/``backtest``.

``run``, ``stats``, ``trace``, and ``backtest`` report analyzer warnings
for each query through :mod:`repro.observability.log` at startup (stderr
by default; results on stdout are unaffected).  ``--log-json`` switches
all operational logging to JSON lines.

Examples::

    python -m repro demo stock --events 10000 --out ticks.jsonl
    python -m repro lint query.ceprql --schema registry.json
    python -m repro run query.ceprql --events ticks.jsonl
    python -m repro stats query.ceprql --events ticks.jsonl --prom
    python -m repro trace query.ceprql --events ticks.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, TextIO

from repro.events.event import Event
from repro.events.sources import CSVSource, JSONLSource, write_jsonl
from repro.language.errors import CEPRError
from repro.observability.log import configure_logging, get_logger
from repro.ranking.emission import Emission
from repro.runtime.engine import CEPREngine
from repro.runtime.serialize import emission_to_line
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.generic import GenericWorkload
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import StockWorkload
from repro.workloads.traffic import TrafficWorkload

_log = get_logger(__name__)

_WORKLOADS = {
    "clickstream": ClickstreamWorkload,
    "stock": StockWorkload,
    "vitals": VitalsWorkload,
    "traffic": TrafficWorkload,
    "generic": GenericWorkload,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CEPR: ranked pattern matching over event streams",
        # Abbreviation would make subcommand options like `backtest --log`
        # ambiguous against the global --log-* flags during classification.
        allow_abbrev=False,
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="operational log threshold (default: warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit operational logs as JSON lines instead of text",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="parse a query file and print its evaluation plan"
    )
    validate.add_argument("query_files", nargs="+", type=Path)

    lint = commands.add_parser(
        "lint", help="statically analyse query files and report diagnostics"
    )
    lint.add_argument("query_files", nargs="*", type=Path)
    lint.add_argument(
        "--schema",
        type=Path,
        default=None,
        help="JSON schema registry enabling type and domain checks",
    )
    lint.add_argument(
        "--self",
        dest="self_lint",
        action="store_true",
        help="lint the CEPR codebase itself for project-rule violations "
        "(CEPR6xx; see docs/SANITIZER.md)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit diagnostics as JSON instead of text",
    )

    run = commands.add_parser("run", help="run queries over a recorded stream")
    run.add_argument("query_files", nargs="+", type=Path)
    run.add_argument(
        "--events", required=True, type=Path, help="JSONL or CSV event file"
    )
    run.add_argument(
        "--output",
        choices=("text", "jsonl"),
        default="text",
        help="result rendering (default: text)",
    )
    run.add_argument(
        "--no-pruning",
        action="store_true",
        help="disable score-bound pruning (ablation)",
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the CEPRSan invariant sanitizer "
        "(equivalent to CEPR_SANITIZE=1; see docs/SANITIZER.md)",
    )
    run.add_argument(
        "--stats", action="store_true", help="print per-query statistics at the end"
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run partitioned queries across N worker shards (default: 1)",
    )
    run.add_argument(
        "--runner",
        choices=("embedded", "sharded", "process"),
        default=None,
        help="execution backend (default: embedded, or sharded when "
        "--shards > 1); process runs shards as worker processes "
        "(see docs/PROCESS_RUNNER.md)",
    )
    run.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write emissions as JSON lines to PATH instead of stdout "
        "(appends when resuming)",
    )
    run.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist crash-recovery checkpoints to DIR (see docs/RECOVERY.md)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        metavar="N",
        help="checkpoint every N consumed events (default: 1000; "
        "requires --checkpoint-dir)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest valid checkpoint in --checkpoint-dir, "
        "skipping the already-consumed prefix of --events",
    )
    _add_flightrec_flags(run)

    serve = commands.add_parser(
        "serve", help="serve queries over TCP (see docs/SERVING.md)"
    )
    serve.add_argument("query_files", nargs="*", type=Path)
    serve.add_argument(
        "--query-file",
        action="append",
        type=Path,
        default=None,
        metavar="PATH",
        help="additional query file (repeatable; merged with positionals)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=7654,
        help="TCP port to listen on (0 picks a free port; default: 7654)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run partitioned queries across N worker shards (default: 1); "
        "dynamic REGISTER requires --shards 1",
    )
    serve.add_argument(
        "--runner",
        choices=("threaded", "sharded", "process"),
        default=None,
        help="execution backend (default: threaded, or sharded when "
        "--shards > 1); process runs shards as worker processes "
        "(see docs/PROCESS_RUNNER.md)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist crash-recovery checkpoints to DIR",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        metavar="N",
        help="checkpoint every N ingested events (default: 1000)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restore the latest valid checkpoint in --checkpoint-dir at start",
    )
    serve.add_argument(
        "--max-frame-bytes",
        type=int,
        default=None,
        metavar="N",
        help="reject inbound frames larger than N bytes (default: 4 MiB)",
    )
    serve.add_argument(
        "--read-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-frame payload timeout; idle connections are fine "
        "(default: 30)",
    )
    serve.add_argument(
        "--subscriber-queue",
        type=int,
        default=256,
        metavar="N",
        help="bound of each connection's outbound emission queue "
        "(default: 256)",
    )
    serve.add_argument(
        "--slow-consumer",
        choices=("disconnect", "drop"),
        default="disconnect",
        help="policy when a subscriber's queue is full (default: disconnect)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="merge-release cadence for --shards > 1 (default: 0.05)",
    )
    serve.add_argument(
        "--shed-policy",
        choices=("off", "exact", "adaptive"),
        default="off",
        help="overload load-shedding policy (see docs/SHEDDING.md): "
        "exact elides only bound-certified events (output unchanged), "
        "adaptive samples rank-weighted drops toward --latency-target "
        "(default: off)",
    )
    serve.add_argument(
        "--latency-target",
        type=float,
        default=None,
        metavar="SECONDS",
        help="ingest-lag budget the shedding controller steers toward "
        "(default: 1.0; only meaningful with --shed-policy)",
    )
    serve.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the CEPRSan sanitizer and the event-loop watchdog "
        "(equivalent to CEPR_SANITIZE=1; see docs/SANITIZER.md)",
    )
    serve.add_argument(
        "--tracing",
        action="store_true",
        help="enable span tracing on the engine so TRACE requests include "
        "run-lifecycle competition tallies (--shards 1 only)",
    )
    _add_flightrec_flags(serve)

    stats = commands.add_parser(
        "stats", help="replay a stream and export engine metrics"
    )
    stats.add_argument("query_files", nargs="*", type=Path)
    stats.add_argument(
        "--events", type=Path, default=None, help="JSONL or CSV event file"
    )
    stats.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="fetch metrics from a running `serve` instance instead of "
        "replaying (query files and --events are not needed)",
    )
    stats.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="replay partitioned queries across N worker shards (default: 1)",
    )
    stats_format = stats.add_mutually_exclusive_group()
    stats_format.add_argument(
        "--prom",
        action="store_true",
        help="export as Prometheus text exposition (version 0.0.4)",
    )
    stats_format.add_argument(
        "--json",
        action="store_true",
        help="export as a JSON document",
    )
    stats.add_argument(
        "--watch",
        action="store_true",
        help="render the live monitor while the replay runs",
    )
    stats.add_argument(
        "--refresh",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="monitor refresh interval for --watch (default: 0.5)",
    )

    top = commands.add_parser(
        "top", help="rank queries by measured cost (CPU, events, runs)"
    )
    top.add_argument("query_files", nargs="*", type=Path)
    top.add_argument(
        "--events", type=Path, default=None, help="JSONL or CSV event file"
    )
    top.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="rank the live cost accounts of a running `serve` instance "
        "instead of replaying",
    )
    top.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="replay partitioned queries across N worker shards (default: 1)",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit the ranked accounts as a JSON document",
    )
    top.add_argument(
        "--watch",
        action="store_true",
        help="with --connect: refresh the ranking until interrupted",
    )
    top.add_argument(
        "--refresh",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh interval for --watch (default: 1.0)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="with --watch: stop after N refreshes (default: run forever)",
    )

    flightrec = commands.add_parser(
        "flightrec",
        help="inspect or trigger black-box flight-recorder artifacts",
    )
    flightrec_commands = flightrec.add_subparsers(
        dest="flightrec_command", required=True
    )
    flightrec_list = flightrec_commands.add_parser(
        "list", help="list artifacts in a directory, oldest first"
    )
    flightrec_list.add_argument(
        "--dir", type=Path, required=True, metavar="DIR",
        help="directory holding cepr-flightrec-*.json artifacts",
    )
    flightrec_show = flightrec_commands.add_parser(
        "show", help="print one artifact (most recent when unnamed)"
    )
    flightrec_show.add_argument(
        "artifact", nargs="?", type=Path, default=None,
        help="artifact path (default: newest in --dir)",
    )
    flightrec_show.add_argument(
        "--dir", type=Path, default=None, metavar="DIR",
        help="directory to pick the newest artifact from",
    )
    flightrec_show.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="only print the last N ring entries",
    )
    flightrec_show.add_argument(
        "--json", action="store_true",
        help="print the raw artifact document",
    )
    flightrec_dump = flightrec_commands.add_parser(
        "dump",
        help="ask a running `serve --flightrec` process (SIGUSR2) to dump",
    )
    flightrec_dump.add_argument(
        "--pid", type=int, required=True, help="server process id"
    )
    flightrec_dump.add_argument(
        "--dir", type=Path, default=None, metavar="DIR",
        help="artifact directory to wait on (prints the new artifact path)",
    )
    flightrec_dump.add_argument(
        "--wait", type=float, default=5.0, metavar="SECONDS",
        help="how long to wait for the artifact with --dir (default: 5)",
    )

    trace = commands.add_parser(
        "trace", help="replay a stream and print emission provenance"
    )
    trace.add_argument("query_files", nargs="*", type=Path)
    trace.add_argument(
        "--events", type=Path, default=None, help="JSONL or CSV event file"
    )
    trace.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="trace an emission on a running `serve` instance (needs "
        "--query; includes client-stamped remote trace contexts)",
    )
    trace.add_argument(
        "--query",
        default=None,
        metavar="NAME",
        help="only trace emissions of this query (default: all queries; "
        "required with --connect)",
    )
    trace_select = trace.add_mutually_exclusive_group()
    trace_select.add_argument(
        "--emission",
        type=int,
        default=-1,
        metavar="INDEX",
        help="which emission to trace, 0-based; negatives count from the "
        "end (default: -1, the last)",
    )
    trace_select.add_argument(
        "--all", action="store_true", help="trace every emission"
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit traces as JSON instead of text",
    )

    backtest = commands.add_parser(
        "backtest", help="replay a slice of a recorded event log"
    )
    backtest.add_argument("query_files", nargs="+", type=Path)
    backtest.add_argument(
        "--log", required=True, type=Path, help="JSONL event log (see `demo`)"
    )
    backtest.add_argument("--start", type=float, default=None, help="slice start ts")
    backtest.add_argument("--end", type=float, default=None, help="slice end ts")
    backtest.add_argument("--no-pruning", action="store_true")
    backtest.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the CEPRSan invariant sanitizer during the replay",
    )
    backtest.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="replay partitioned queries across N worker shards (default: 1)",
    )

    demo = commands.add_parser("demo", help="generate a synthetic workload")
    demo.add_argument("workload", choices=sorted(_WORKLOADS))
    demo.add_argument("--events", type=int, default=10_000)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--out", required=True, type=Path)

    return parser


def _add_flightrec_flags(command: argparse.ArgumentParser) -> None:
    from repro.observability.flightrec import DEFAULT_BYTE_BUDGET

    command.add_argument(
        "--flightrec",
        action="store_true",
        help="arm the black-box flight recorder: a crash (or SIGUSR2 under "
        "serve) dumps a postmortem artifact to --checkpoint-dir "
        "(see docs/OBSERVABILITY.md)",
    )
    command.add_argument(
        "--flightrec-budget",
        type=int,
        default=DEFAULT_BYTE_BUDGET,
        metavar="BYTES",
        help="byte budget of the flight-recorder ring "
        f"(default: {DEFAULT_BYTE_BUDGET})",
    )


def main(argv: list[str] | None = None, out: TextIO = sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_lines=args.log_json)
    try:
        if args.command == "validate":
            return _cmd_validate(args, out)
        if args.command == "lint":
            return _cmd_lint(args, out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "stats":
            return _cmd_stats(args, out)
        if args.command == "top":
            return _cmd_top(args, out)
        if args.command == "flightrec":
            return _cmd_flightrec(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "backtest":
            return _cmd_backtest(args, out)
        return _cmd_demo(args, out)
    except BrokenPipeError:
        # downstream consumer (e.g. `| head`) closed the pipe: not an error
        return 0
    except CEPRError as exc:
        print(f"error: {exc}", file=out)
        return 1
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 1


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def _cmd_validate(args: argparse.Namespace, out: TextIO) -> int:
    engine = CEPREngine()
    for path in args.query_files:
        handle = engine.register_query(path.read_text(), name=path.stem)
        print(f"-- {path} --", file=out)
        print(handle.explain(), file=out)
    print(f"{len(args.query_files)} query file(s) valid", file=out)
    return 0


def _cmd_lint(args: argparse.Namespace, out: TextIO) -> int:
    import json

    from repro.events.schema import load_registry
    from repro.language.analysis import Severity, lint_text

    registry = load_registry(args.schema) if args.schema is not None else None
    if not args.query_files and not args.self_lint:
        raise ValueError("lint requires query files and/or --self")
    reports = []
    errors = warnings = 0
    for path in args.query_files:
        diagnostics = lint_text(path.read_text(), registry)
        reports.append((path, diagnostics))
        errors += sum(1 for d in diagnostics if d.severity is Severity.ERROR)
        warnings += sum(1 for d in diagnostics if d.severity is Severity.WARNING)
    if args.self_lint:
        from repro.sanitize.selflint import run_selflint

        diagnostics = run_selflint()
        reports.append(("self (src/repro)", diagnostics))
        errors += sum(1 for d in diagnostics if d.severity is Severity.ERROR)
        warnings += sum(1 for d in diagnostics if d.severity is Severity.WARNING)

    if args.json:
        payload = [
            {"file": str(path), "diagnostics": [d.to_dict() for d in diags]}
            for path, diags in reports
        ]
        print(json.dumps(payload, indent=2), file=out)
        return 1 if errors else 0

    for path, diags in reports:
        if not diags:
            print(f"{path}: clean", file=out)
            continue
        print(f"{path}:", file=out)
        for diagnostic in diags:
            print("  " + diagnostic.format().replace("\n", "\n  "), file=out)
    total = errors + warnings
    if total:
        print(f"{total} problem(s) ({errors} error(s), {warnings} warning(s))", file=out)
    else:
        print("no problems", file=out)
    return 1 if errors else 0


def _report_diagnostics(label: str, diagnostics) -> None:
    """Log non-info analyzer findings (stdout carries results only)."""
    import logging

    from repro.language.analysis import Severity

    for diagnostic in diagnostics:
        if diagnostic.severity is Severity.INFO:
            continue
        level = (
            logging.ERROR
            if diagnostic.severity is Severity.ERROR
            else logging.WARNING
        )
        _log.log(
            level,
            "%s: %s [%s] %s",
            label,
            diagnostic.code,
            diagnostic.span,
            diagnostic.message,
        )


def _load_events(path: Path) -> Iterable[Event]:
    suffix = path.suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        return JSONLSource(path)
    if suffix == ".csv":
        return CSVSource(path)
    raise ValueError(f"unsupported event file {path}: expected .jsonl or .csv")


def _checkpoint_store(args: argparse.Namespace):
    """Validate the checkpoint flag combination; build the store (or None)."""
    from repro.store.checkpoint import CheckpointStore

    if args.checkpoint_every < 1:
        raise ValueError(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    if args.checkpoint_dir is None:
        if args.resume:
            raise ValueError("--resume requires --checkpoint-dir")
        return None
    return CheckpointStore(args.checkpoint_dir)


def _resume_consumed(store, args: argparse.Namespace, restore) -> int:
    """Restore the latest checkpoint; returns the source prefix to skip."""
    if store is None or not args.resume:
        return 0
    checkpoint = store.latest()
    if checkpoint is None:
        _log.warning(
            "--resume: no valid checkpoint in %s, starting from the beginning",
            store.directory,
        )
        return 0
    restore(checkpoint.state)
    _log.info(
        "resumed from %s: skipping %d already-consumed event(s)",
        checkpoint.path.name,
        checkpoint.position.events_consumed,
    )
    return checkpoint.position.events_consumed


def _maybe_checkpoint(store, every: int, consumed: int, last_ts: float,
                      snapshot) -> None:
    """Save a checkpoint if ``consumed`` sits on an ``every`` boundary."""
    from repro.store.checkpoint import Position

    if store is None or consumed % every:
        return
    state = snapshot()
    last_seq = int(state["sequencer"]["next_seq"]) - 1
    store.save(
        state,
        Position(events_consumed=consumed, last_seq=last_seq, last_ts=last_ts),
    )


def _install_flightrec(args: argparse.Namespace) -> None:
    """Arm the process-wide flight recorder when ``--flightrec`` was given.

    Artifacts land in ``--checkpoint-dir`` when set (postmortems next to
    the state they describe), else the working directory.
    """
    if not getattr(args, "flightrec", False):
        return
    from repro.observability.flightrec import install_flight_recorder

    install_flight_recorder(
        byte_budget=args.flightrec_budget,
        directory=getattr(args, "checkpoint_dir", None),
    )


def _parse_connect(text: str) -> tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"--connect expects HOST:PORT, got {text!r}")
    return host, int(port_text)


def _make_run_sink(args: argparse.Namespace, out: TextIO):
    """The run commands' shared sink: JSONL file or stdout rendering."""
    from repro.runtime.sinks import CallbackSink, JSONLSink

    if args.out is not None:
        return JSONLSink(args.out, mode="a" if args.resume else "w")
    return CallbackSink(lambda emission: _render(emission, args.output, out))


def _cmd_run(args: argparse.Namespace, out: TextIO) -> int:
    if args.shards < 1:
        raise ValueError(f"--shards must be >= 1, got {args.shards}")
    if args.sanitize:
        from repro.sanitize import enable_sanitizer

        enable_sanitizer()
    _install_flightrec(args)
    backend = args.runner or ("embedded" if args.shards == 1 else "sharded")
    if backend == "embedded" and args.shards > 1:
        raise ValueError(
            "--runner embedded is single-engine; drop --shards or choose "
            "--runner sharded/process"
        )
    if backend in ("sharded", "process"):
        return _cmd_run_sharded(args, out, backend)
    from repro.runtime.sinks import close_sink

    engine = CEPREngine(enable_pruning=not args.no_pruning)
    sink = _make_run_sink(args, out)
    for path in args.query_files:
        handle = engine.register_query(
            path.read_text(), name=path.stem, collect_results=False
        )
        _report_diagnostics(str(path), handle.diagnostics)
        handle.subscribe(sink)

    store = _checkpoint_store(args)
    skip = _resume_consumed(store, args, engine.restore)

    try:
        consumed = 0
        for event in _load_events(args.events):
            consumed += 1
            if consumed <= skip:
                continue
            engine.push(event)
            _maybe_checkpoint(
                store, args.checkpoint_every, consumed, event.timestamp,
                engine.snapshot,
            )
    except BaseException:
        # A failure mid-stream must behave like a crash: engine.close()
        # would flush, emitting partial-window results the resumed run
        # will produce again.  Close only the sink.
        from repro.observability.flightrec import dump_if_armed

        dump_if_armed("run-crash")
        close_sink(sink)
        raise
    engine.close()  # flush + sink flush/close through the engine

    if args.stats:
        _print_stats(engine.stats_by_query(), out, engine.shared_stats())
        _print_sanitizer_stats(
            None if engine.sanitizer is None else dict(engine.sanitizer.trips),
            out,
        )
        _print_checkpoint_stats(store, out)
    if sink.emissions_accepted == 0 and args.output == "text" and args.out is None:
        print("(no results)", file=out)
    return 0


def _cmd_run_sharded(
    args: argparse.Namespace, out: TextIO, backend: str = "sharded"
) -> int:
    from repro.language.analysis import run_analysis
    from repro.runtime.runner import RunnerConfig, create_runner
    from repro.runtime.sinks import close_sink

    # The global on_emission hook (not per-view subscriptions) preserves
    # the interleaved cross-query emission order of earlier releases.
    sink = _make_run_sink(args, out)
    runner = create_runner(
        config=RunnerConfig(
            backend=backend,
            shards=args.shards,
            enable_pruning=not args.no_pruning,
            on_emission=sink.accept,
        )
    )
    for path in args.query_files:
        view = runner.register_query(path.read_text(), name=path.stem)
        _report_diagnostics(str(path), run_analysis(view.analyzed))

    store = _checkpoint_store(args)
    runner.start()
    try:
        skip = _resume_consumed(store, args, runner.restore)
        consumed = 0
        for event in _load_events(args.events):
            consumed += 1
            if consumed <= skip:
                continue
            runner.submit(event)
            _maybe_checkpoint(
                store, args.checkpoint_every, consumed, event.timestamp,
                runner.snapshot,
            )
        runner.flush()
    except BaseException:
        # A failure mid-stream must behave like a crash: stop() would
        # flush, emitting partial-epoch results the resumed run will
        # produce again.  Tear the fleet down without flushing instead.
        from repro.observability.flightrec import dump_if_armed

        dump_if_armed("run-crash")
        runner.kill()
        raise
    finally:
        runner.stop()  # no-op after kill()
        close_sink(sink)

    if args.stats:
        _print_stats(runner.stats_by_query(), out, runner.shared_stats())
        _print_sanitizer_stats(runner.sanitizer_trips(), out)
        _print_checkpoint_stats(store, out)
    if sink.emissions_accepted == 0 and args.output == "text" and args.out is None:
        print("(no results)", file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out: TextIO) -> int:
    import asyncio

    from repro.serve.protocol import DEFAULT_MAX_FRAME_BYTES
    from repro.serve.server import CEPRServer

    from repro.language.analysis import lint_text

    if args.sanitize:
        from repro.sanitize import enable_sanitizer

        enable_sanitizer()
    _install_flightrec(args)

    paths = list(args.query_files) + list(args.query_file or [])
    queries: dict[str, str] = {}
    for path in paths:
        if path.stem in queries:
            raise ValueError(f"duplicate query name {path.stem!r} ({path})")
        text = path.read_text()
        _report_diagnostics(str(path), lint_text(text))
        queries[path.stem] = text

    server = CEPRServer(
        queries,
        host=args.host,
        port=args.port,
        shards=args.shards,
        runner_backend=args.runner,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        max_frame_bytes=(
            args.max_frame_bytes
            if args.max_frame_bytes is not None
            else DEFAULT_MAX_FRAME_BYTES
        ),
        read_timeout=args.read_timeout,
        outbound_queue=args.subscriber_queue,
        slow_consumer=args.slow_consumer,
        poll_interval=args.poll_interval,
        tracing=args.tracing,
        shed_policy=args.shed_policy,
        latency_target=args.latency_target,
    )

    def on_ready(ready: CEPRServer) -> None:
        print(
            f"cepr serve: listening on {ready.host}:{ready.bound_port} "
            f"({len(queries)} queries, runner={ready.runner_backend}, "
            f"shards={args.shards})",
            file=out,
        )
        out.flush()

    asyncio.run(server.serve(on_ready=on_ready))
    stats = server.stats
    print(
        f"cepr serve: drained "
        f"(events={stats.events_ingested} "
        f"emissions={stats.emissions_fanned_out} "
        f"connections={stats.connections_total})",
        file=out,
    )
    return 0


def _print_sanitizer_stats(trips: dict | None, out: TextIO) -> None:
    """One `--stats` line for CEPRSan (silent when the sanitizer is off)."""
    if trips is None:
        return
    detail = " ".join(
        f"{check}={count}" for check, count in sorted(trips.items())
    )
    total = sum(trips.values())
    print(f"  sanitizer: trips={total}" + (f" ({detail})" if detail else ""),
          file=out)


def _print_checkpoint_stats(store, out: TextIO) -> None:
    if store is None:
        return
    print(
        f"  checkpoints: saves={store.saves} loads={store.loads} "
        f"invalid_skipped={store.invalid_skipped} "
        f"last_bytes={store.last_save_bytes}",
        file=out,
    )


def _print_stats(
    stats_by_query: dict, out: TextIO, shared: dict | None = None
) -> None:
    print("-- statistics --", file=out)
    for name, stats in stats_by_query.items():
        print(
            f"  {name}: events={stats['events_routed']:.0f} "
            f"matches={stats['matches']:.0f} "
            f"emissions={stats['emissions']:.0f} "
            f"pruned={stats['runs_pruned']:.0f}",
            file=out,
        )
    if shared:
        print(
            f"  shared: distinct_predicates={shared['distinct_predicates']} "
            f"evals_saved={shared['predicate_evals_saved']} "
            f"prefix_states_shared={shared['prefix_states_shared']} "
            f"events_gated={shared['events_gated']}",
            file=out,
        )


def _cmd_stats(args: argparse.Namespace, out: TextIO) -> int:
    if args.connect is not None:
        if args.watch:
            raise ValueError("--connect does not support --watch")
        if args.events is not None or args.query_files:
            raise ValueError(
                "--connect fetches metrics from a running server; "
                "query files and --events do not apply"
            )
        return _stats_remote(args, out)
    if args.events is None:
        raise ValueError("stats requires --events (or --connect HOST:PORT)")
    if not args.query_files:
        raise ValueError("stats requires at least one query file")
    if args.shards < 1:
        raise ValueError(f"--shards must be >= 1, got {args.shards}")
    if args.shards > 1:
        registry = _stats_sharded(args, out)
    else:
        registry = _stats_single(args, out)
    _export_registry(registry, args, out)
    return 0


def _stats_remote(args: argparse.Namespace, out: TextIO) -> int:
    import json

    from repro.serve.client import CEPRClient

    host, port = _parse_connect(args.connect)
    with CEPRClient(host=host, port=port) as client:
        doc = client.stats()
    if args.prom:
        out.write(doc["prom"])
        return 0
    if args.json:
        print(json.dumps(doc["metrics"], indent=2), file=out)
        return 0
    metrics = doc["metrics"]
    print(f"-- metrics ({metrics['namespace']}) --", file=out)
    for sample in metrics["metrics"]:
        labels = ",".join(
            f"{key}={value}"
            for key, value in sorted(sample.get("labels", {}).items())
        )
        series = f"{sample['name']}{{{labels}}}" if labels else sample["name"]
        if sample["kind"] == "histogram":
            quantiles = " ".join(
                f"p{float(quantile) * 100:g}={value:g}"
                for quantile, value in sorted(
                    sample.get("quantiles", {}).items(),
                    key=lambda kv: float(kv[0]),
                )
            )
            detail = f"count={sample['count']} sum={sample['value']:g}"
            print(f"  {series} {detail} {quantiles}".rstrip(), file=out)
        else:
            print(f"  {series} {sample['value']:g}", file=out)
    return 0


def _stats_single(args: argparse.Namespace, out: TextIO):
    from repro.runtime.runner import RunnerConfig, create_runner

    # Watch mode wants the threaded runner (the monitor header shows
    # queue pressure alongside throughput); plain replay stays embedded.
    backend = "threaded" if args.watch else "embedded"
    runner = create_runner(config=RunnerConfig(backend=backend))
    for path in args.query_files:
        handle = runner.register_query(path.read_text(), name=path.stem)
        _report_diagnostics(str(path), handle.diagnostics)
    if args.watch:
        runner.start()
        try:
            _watch_replay(runner, runner.submit, _load_events(args.events),
                          args.refresh, out)
        finally:
            runner.stop()
        _render_monitor_frame(runner, out)
        return runner.metrics_registry()
    runner.submit_all(_load_events(args.events))
    runner.flush()
    return runner.metrics_registry()


def _stats_sharded(args: argparse.Namespace, out: TextIO):
    from repro.language.analysis import run_analysis
    from repro.runtime.runner import RunnerConfig, create_runner

    runner = create_runner(
        config=RunnerConfig(backend="sharded", shards=args.shards)
    )
    for path in args.query_files:
        view = runner.register_query(path.read_text(), name=path.stem)
        _report_diagnostics(str(path), run_analysis(view.analyzed))
    runner.start()
    try:
        if args.watch:
            _watch_replay(runner, runner.submit, _load_events(args.events),
                          args.refresh, out)
        else:
            runner.submit_all(_load_events(args.events))
        runner.flush()
    finally:
        runner.stop()
    if args.watch:
        _render_monitor_frame(runner, out)
    return runner.metrics_registry()


def _watch_replay(source, submit, events: Iterable[Event],
                  refresh: float, out: TextIO) -> None:
    """Render the live monitor while a producer thread replays the stream."""
    import threading

    from repro.runtime.monitor import Monitor

    failures: list[BaseException] = []
    done = threading.Event()

    def produce() -> None:
        try:
            for event in events:
                submit(event)
        except BaseException as exc:
            failures.append(exc)
        finally:
            done.set()

    monitor = Monitor(source).track()
    clear = bool(getattr(out, "isatty", lambda: False)())
    thread = threading.Thread(target=produce, daemon=True)
    thread.start()
    while not done.wait(refresh):
        monitor.run_live(iterations=1, out=out, clear=clear)
    thread.join()
    if failures:
        raise failures[0]


def _render_monitor_frame(source, out: TextIO) -> None:
    from repro.runtime.monitor import Monitor

    clear = bool(getattr(out, "isatty", lambda: False)())
    Monitor(source).run_live(iterations=1, out=out, clear=clear)


def _export_registry(registry, args: argparse.Namespace, out: TextIO) -> None:
    import json

    if args.prom:
        out.write(registry.to_prometheus())
        return
    if args.json:
        print(json.dumps(registry.to_json(), indent=2), file=out)
        return
    print(f"-- metrics ({registry.namespace}) --", file=out)
    for sample in registry.collect():
        labels = ",".join(
            f"{key}={value}" for key, value in sorted(sample.labels.items())
        )
        series = f"{sample.name}{{{labels}}}" if labels else sample.name
        if sample.kind == "histogram":
            quantiles = " ".join(
                f"p{quantile * 100:g}={value:g}"
                for quantile, value in sorted(sample.quantiles.items())
            )
            detail = f"count={sample.count} sum={sample.value:g}"
            print(f"  {series} {detail} {quantiles}".rstrip(), file=out)
        else:
            print(f"  {series} {sample.value:g}", file=out)


def _cmd_top(args: argparse.Namespace, out: TextIO) -> int:
    import json

    if args.connect is not None:
        if args.events is not None or args.query_files:
            raise ValueError(
                "--connect ranks a running server's accounts; "
                "query files and --events do not apply"
            )
        return _top_remote(args, out)
    if args.watch:
        raise ValueError("top --watch requires --connect")
    if args.events is None:
        raise ValueError("top requires --events (or --connect HOST:PORT)")
    if not args.query_files:
        raise ValueError("top requires at least one query file")
    if args.shards < 1:
        raise ValueError(f"--shards must be >= 1, got {args.shards}")

    from repro.observability.cost import rank_accounts

    if args.shards > 1:
        from repro.language.analysis import run_analysis
        from repro.runtime.runner import RunnerConfig, create_runner

        runner = create_runner(
            config=RunnerConfig(backend="sharded", shards=args.shards)
        )
        for path in args.query_files:
            view = runner.register_query(path.read_text(), name=path.stem)
            _report_diagnostics(str(path), run_analysis(view.analyzed))
        runner.start()
        try:
            runner.submit_all(_load_events(args.events))
            runner.flush()
        finally:
            runner.stop()
        accounts = rank_accounts(runner.cost_accounts().values())
        pressure = runner.pressure().to_dict()
    else:
        engine = CEPREngine()
        for path in args.query_files:
            handle = engine.register_query(path.read_text(), name=path.stem)
            _report_diagnostics(str(path), handle.diagnostics)
        for event in _load_events(args.events):
            engine.push(event)
        engine.flush()
        accounts = rank_accounts(engine.cost_accounts().values())
        pressure = None

    docs = [account.to_dict() for account in accounts]
    if args.json:
        print(
            json.dumps(
                {"cost_accounts": docs, "pressure": pressure}, indent=2
            ),
            file=out,
        )
        return 0
    _render_top(docs, pressure, out)
    return 0


def _top_remote(args: argparse.Namespace, out: TextIO) -> int:
    import json
    import time

    from repro.serve.client import CEPRClient

    host, port = _parse_connect(args.connect)
    with CEPRClient(host=host, port=port) as client:
        iteration = 0
        while True:
            doc = client.stats()
            if args.json:
                print(
                    json.dumps(
                        {
                            "cost_accounts": doc["cost_accounts"],
                            "pressure": doc["pressure"],
                            "shedding": doc.get("shedding"),
                        },
                        indent=2,
                    ),
                    file=out,
                )
            else:
                _render_top(
                    doc["cost_accounts"],
                    doc["pressure"],
                    out,
                    shedding=doc.get("shedding"),
                )
            if not args.watch:
                return 0
            iteration += 1
            if args.iterations is not None and iteration >= args.iterations:
                return 0
            out.flush()
            try:
                time.sleep(args.refresh)
            except KeyboardInterrupt:
                return 0


def _render_top(
    accounts: list[dict],
    pressure: dict | None,
    out: TextIO,
    shedding: dict | None = None,
) -> None:
    """The ranked cost-account table (`cepr top`'s text mode)."""
    header = f"-- cepr top: {len(accounts)} quer(ies) by cost --"
    if pressure:
        header += (
            f"  pressure={pressure.get('level', 0.0):.2f} "
            f"[{pressure.get('state', 'ok')}]"
        )
    if shedding:
        stats = shedding.get("stats", {})
        state = "engaged" if shedding.get("engaged") else "standby"
        header += (
            f"  shed[{shedding.get('policy')}]={state} "
            f"dropped={stats.get('shed_events_total', 0)} "
            f"recall~{stats.get('recall_estimate', 1.0):.2f}"
        )
    print(header, file=out)
    if not accounts:
        print("  (no queries registered)", file=out)
        return
    width = max(5, max(len(doc["query"]) for doc in accounts))
    print(
        f"  {'QUERY':<{width}} {'CPU(ms)':>9} {'us/ev':>8} {'EVENTS':>8} "
        f"{'RUNS +/~/-':>16} {'PRUNE%':>7} {'SHARED h/m':>12} {'HIT%':>5} "
        f"{'MATCH':>6}",
        file=out,
    )
    for doc in accounts:
        runs = (
            f"{doc['runs_created']}/{doc['runs_extended']}"
            f"/{doc['runs_killed']}"
        )
        shared = f"{doc['shared_hits']}/{doc['shared_misses']}"
        print(
            f"  {doc['query']:<{width}} "
            f"{doc['cpu_seconds'] * 1e3:>9.2f} "
            f"{doc['cpu_per_event_us']:>8.1f} "
            f"{doc['events_routed']:>8} "
            f"{runs:>16} "
            f"{doc['prune_ratio'] * 100:>6.0f}% "
            f"{shared:>12} "
            f"{doc['hit_ratio'] * 100:>4.0f}% "
            f"{doc['matches']:>6}",
            file=out,
        )


def _cmd_flightrec(args: argparse.Namespace, out: TextIO) -> int:
    import json

    from repro.observability.flightrec import list_artifacts

    if args.flightrec_command == "list":
        artifacts = list_artifacts(args.dir)
        if not artifacts:
            print(f"(no flight-recorder artifacts in {args.dir})", file=out)
            return 1
        for path in artifacts:
            doc = json.loads(path.read_text())
            print(
                f"{path}  reason={doc.get('reason', '?')} "
                f"entries={len(doc.get('entries', []))} "
                f"bytes={path.stat().st_size}",
                file=out,
            )
        return 0

    if args.flightrec_command == "show":
        path = args.artifact
        if path is None:
            if args.dir is None:
                raise ValueError("flightrec show needs an artifact or --dir")
            artifacts = list_artifacts(args.dir)
            if not artifacts:
                print(
                    f"(no flight-recorder artifacts in {args.dir})", file=out
                )
                return 1
            path = artifacts[-1]
        doc = json.loads(path.read_text())
        if args.json:
            print(json.dumps(doc, indent=2), file=out)
            return 0
        entries = doc.get("entries", [])
        print(
            f"-- {path.name}: reason={doc.get('reason', '?')} "
            f"recorded={doc.get('recorded', '?')} "
            f"dropped={doc.get('dropped', 0)} "
            f"entries={len(entries)} --",
            file=out,
        )
        shown = entries if args.tail is None else entries[-args.tail:]
        for entry in shown:
            timestamp = entry.pop("ts", "?")
            kind = entry.pop("kind", "?")
            detail = " ".join(
                f"{key}={value}" for key, value in entry.items()
            )
            print(f"  {timestamp} {kind} {detail}".rstrip(), file=out)
        return 0

    # dump: poke a running `serve --flightrec` process via SIGUSR2.
    import os
    import signal as signal_module
    import time

    if not hasattr(signal_module, "SIGUSR2"):
        raise ValueError("SIGUSR2 is not available on this platform")
    before = set(list_artifacts(args.dir)) if args.dir is not None else set()
    os.kill(args.pid, signal_module.SIGUSR2)
    if args.dir is None:
        print(f"sent SIGUSR2 to pid {args.pid}", file=out)
        return 0
    deadline = time.monotonic() + args.wait
    while time.monotonic() < deadline:
        fresh = [
            path
            for path in list_artifacts(args.dir)
            if path not in before
        ]
        if fresh:
            print(fresh[-1], file=out)
            return 0
        time.sleep(0.05)
    print(
        f"error: no new artifact appeared in {args.dir} "
        f"within {args.wait:g}s",
        file=out,
    )
    return 1


def _cmd_trace(args: argparse.Namespace, out: TextIO) -> int:
    import json

    if args.connect is not None:
        return _trace_remote(args, out)
    if not args.query_files:
        raise ValueError("trace requires query files (or --connect)")
    if args.events is None:
        raise ValueError("trace requires --events (or --connect)")
    engine = CEPREngine(tracing=True)
    names = set()
    for path in args.query_files:
        handle = engine.register_query(path.read_text(), name=path.stem)
        _report_diagnostics(str(path), handle.diagnostics)
        names.add(handle.name)
    if args.query is not None and args.query not in names:
        raise ValueError(
            f"--query {args.query!r} does not name a registered query "
            f"(have: {', '.join(sorted(names))})"
        )

    emissions: list[Emission] = []
    for event in _load_events(args.events):
        emissions.extend(engine.push(event))
    emissions.extend(engine.flush())
    if args.query is not None:
        emissions = [
            emission
            for emission in emissions
            if emission.ranking and emission.ranking[0].query_name == args.query
        ]
    if not emissions:
        print("(no emissions to trace)", file=out)
        return 1

    if args.all:
        targets = emissions
    else:
        try:
            targets = [emissions[args.emission]]
        except IndexError:
            raise ValueError(
                f"--emission {args.emission} out of range: "
                f"{len(emissions)} emission(s) were produced"
            ) from None

    if args.json:
        payload = [engine.trace(emission).to_dict() for emission in targets]
        print(json.dumps(payload, indent=2), file=out)
        return 0
    for position, emission in enumerate(targets):
        if position:
            print("", file=out)
        print(engine.trace(emission).describe(), file=out)
    return 0


def _trace_remote(args: argparse.Namespace, out: TextIO) -> int:
    import json

    from repro.serve.client import CEPRClient

    if args.query is None:
        raise ValueError("trace --connect requires --query NAME")
    if args.all:
        raise ValueError("trace --connect traces one emission (no --all)")
    if args.query_files or args.events is not None:
        raise ValueError(
            "--connect traces a running server; "
            "query files and --events do not apply"
        )
    host, port = _parse_connect(args.connect)
    with CEPRClient(host=host, port=port) as client:
        doc = client.trace(args.query, emission=args.emission)
    if args.json:
        print(json.dumps(doc, indent=2), file=out)
        return 0
    print(doc["text"], file=out)
    remote = doc.get("remote", [])
    if remote:
        print("remote contexts:", file=out)
        for record in remote:
            context = " ".join(
                f"{key}={value}"
                for key, value in sorted(record["context"].items())
            )
            print(
                f"  #{record['position']} {record['variable']}: "
                f"{record['type']} seq={record['seq']} t={record['ts']:g} "
                f"{context}",
                file=out,
            )
    else:
        print("remote contexts: (none stamped)", file=out)
    return 0


def _cmd_backtest(args: argparse.Namespace, out: TextIO) -> int:
    from repro.store.backtest import Backtester
    from repro.store.log import EventLog

    if args.sanitize:
        from repro.sanitize import enable_sanitizer

        enable_sanitizer()

    log = EventLog(args.log)
    if len(log) == 0:
        print(f"error: event log {args.log} is empty", file=out)
        return 1
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=out)
        return 1
    backtester = Backtester(
        log, enable_pruning=not args.no_pruning, shards=args.shards
    )
    from repro.language.analysis import lint_text

    queries = {}
    for path in args.query_files:
        text = path.read_text()
        _report_diagnostics(str(path), lint_text(text))
        queries[path.stem] = text
    results = backtester.compare(queries, start_ts=args.start, end_ts=args.end)
    lo, hi = log.time_range
    window = f"[{args.start if args.start is not None else lo:g}, "              f"{args.end if args.end is not None else hi:g})"
    print(f"backtest over {window} of {len(log)} recorded events:", file=out)
    for name, result in sorted(results.items(), key=lambda kv: -kv[1].matches):
        best = (
            f"best {result.final_ranking[0].rank_values}"
            if result.final_ranking and result.final_ranking[0].rank_values
            else ""
        )
        print(
            f"  {name}: {result.matches} matches over "
            f"{result.events_replayed} events {best}".rstrip(),
            file=out,
        )
    return 0


def _cmd_demo(args: argparse.Namespace, out: TextIO) -> int:
    workload = _WORKLOADS[args.workload](seed=args.seed)
    count = write_jsonl(args.out, workload.events(args.events))
    print(f"wrote {count} {args.workload} events to {args.out}", file=out)
    return 0


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _render(emission: Emission, mode: str, out: TextIO) -> None:
    if mode == "text":
        print(_prefix(emission) + emission.describe(), file=out)
        return
    print(emission_to_line(emission), file=out)


def _prefix(emission: Emission) -> str:
    query = emission.ranking[0].query_name if emission.ranking else None
    return f"[{query}] " if query else ""


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
