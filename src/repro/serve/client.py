"""``CEPRClient``: a blocking, zero-dependency SDK for ``cepr serve``.

One socket, one protocol conversation: every request carries a client
correlation id and blocks until its ``ack`` (or typed ``error``, raised
as :class:`CEPRServeError`) arrives.  ``emission`` frames interleave
freely with replies — whenever one is read it is buffered, so
:meth:`pop_emissions` after a :meth:`sync` gives read-your-writes over a
remote engine::

    with CEPRClient(port=7654) as client:
        sub = client.subscribe("spikes", kinds=["window_close"])
        client.push_batch(events)
        client.sync()                      # barrier: server processed all
        for frame in client.pop_emissions():
            print(frame["emission"])

The client never spawns threads; use :meth:`wait_emission` to block for
asynchronously delivered output, and :meth:`drain` to collect the final
flush emissions a draining server sends before its ``bye``.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Any, Iterable

from repro.events.event import Event
from repro.ranking.emission import EmissionKind
from repro.runtime.serialize import event_to_json
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    encode_frame,
    read_frame_blocking,
)

#: Inbound frames (emission payloads) are not size-capped client-side.
_UNCAPPED = 2**31 - 1


class CEPRServeError(Exception):
    """A typed ``CEPR5xx`` error frame from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class ServerClosed(ConnectionClosed):
    """The server said ``bye`` (drain) or closed the connection."""


def _kinds_doc(
    kinds: EmissionKind | str | Iterable[EmissionKind | str] | None,
) -> list[str] | None:
    if kinds is None:
        return None
    if isinstance(kinds, (EmissionKind, str)):
        kinds = (kinds,)
    return [
        kind.value if isinstance(kind, EmissionKind) else str(kind)
        for kind in kinds
    ]


class CEPRClient:
    """Blocking client for a :class:`~repro.serve.server.CEPRServer`.

    ``timeout`` bounds every socket operation (connect, each reply);
    raise it for servers under heavy load.  The constructor performs the
    HELLO handshake — ``server_info`` holds its ack (registered queries,
    shard count, protocol version).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7654,
        timeout: float = 30.0,
        trace_context: dict[str, Any] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: opaque trace context the server stamps onto every event this
        #: connection pushes (see docs/OBSERVABILITY.md); per-push
        #: ``trace=`` arguments overlay it key-by-key.
        self.trace_context = trace_context
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._next_id = 0
        self._emissions: deque[dict[str, Any]] = deque()
        self._notices: deque[dict[str, Any]] = deque()
        self._closed = False
        hello: dict[str, Any] = {"op": "hello", "version": PROTOCOL_VERSION}
        if trace_context is not None:
            hello["trace"] = trace_context
        self.server_info = self._request(hello)

    # -- plumbing ------------------------------------------------------------

    def _classify(self, frame: dict[str, Any]) -> dict[str, Any] | None:
        """Buffer async frames; return the frame if it is a reply."""
        op = frame.get("op")
        if op == "emission":
            self._emissions.append(frame)
            return None
        if op == "unsubscribed":
            self._notices.append(frame)
            return None
        if op == "bye":
            self._closed = True
            raise ServerClosed(
                f"server closed the session: {frame.get('reason', 'bye')}"
            )
        return frame

    def _request(self, frame: dict[str, Any]) -> dict[str, Any]:
        if self._closed:
            raise ServerClosed("client already closed")
        self._next_id += 1
        request_id = self._next_id
        frame["id"] = request_id
        self._sock.sendall(encode_frame(frame, _UNCAPPED))
        while True:
            reply = self._classify(read_frame_blocking(self._sock, _UNCAPPED))
            if reply is None:
                continue
            if reply.get("op") == "error":
                if reply.get("id") in (None, request_id):
                    raise CEPRServeError(
                        reply.get("code", "CEPR500"),
                        reply.get("message", "unknown error"),
                    )
                continue
            if reply.get("op") == "ack" and reply.get("id") == request_id:
                return reply

    # -- requests -------------------------------------------------------------

    def ping(self, t: float | None = None) -> dict[str, Any]:
        frame: dict[str, Any] = {"op": "ping"}
        if t is not None:
            frame["t"] = t
        return self._request(frame)

    def push(
        self,
        event: Event | dict[str, Any],
        trace: dict[str, Any] | None = None,
    ) -> None:
        """Ingest one event (an :class:`Event` or its JSON document).

        ``trace`` overlays the connection's HELLO context on this push
        only; the server stamps the merged context onto the event.
        """
        doc = event_to_json(event) if isinstance(event, Event) else event
        frame: dict[str, Any] = {"op": "push", "event": doc}
        if trace is not None:
            frame["trace"] = trace
        self._request(frame)

    def push_batch(
        self,
        events: Iterable[Event | dict[str, Any]],
        trace: dict[str, Any] | None = None,
    ) -> int:
        """Ingest a batch in one frame; returns the accepted count."""
        docs = [
            event_to_json(event) if isinstance(event, Event) else event
            for event in events
        ]
        frame: dict[str, Any] = {"op": "push_batch", "events": docs}
        if trace is not None:
            frame["trace"] = trace
        reply = self._request(frame)
        return int(reply["accepted"])

    def advance_time(self, timestamp: float) -> None:
        """Heartbeat: close time windows up to ``timestamp`` server-side."""
        self._request({"op": "advance", "t": timestamp})

    def sync(self) -> int:
        """Barrier: the server has processed everything pushed before this.

        Emission frames released up to the barrier are buffered by the
        time this returns (read them with :meth:`pop_emissions`).
        Returns the server's total ingested-event count.
        """
        return int(self._request({"op": "sync"})["events_ingested"])

    def register(self, query: str, name: str | None = None) -> str:
        """Register a query on the server; returns its resolved name."""
        frame: dict[str, Any] = {"op": "register", "query": query}
        if name is not None:
            frame["name"] = name
        return str(self._request(frame)["query"])

    def unregister(self, name: str) -> None:
        self._request({"op": "unregister", "name": name})

    def subscribe(
        self,
        query: str,
        kinds: EmissionKind | str | Iterable[EmissionKind | str] | None = None,
    ) -> int:
        """Subscribe to a query's emissions; returns the subscription id."""
        frame: dict[str, Any] = {"op": "subscribe", "query": query}
        doc = _kinds_doc(kinds)
        if doc is not None:
            frame["kinds"] = doc
        return int(self._request(frame)["sub"])

    def unsubscribe(
        self, sub: int | None = None, query: str | None = None
    ) -> int:
        """Cancel one subscription by id, or all of a query's; returns
        how many were removed."""
        frame: dict[str, Any] = {"op": "unsubscribe"}
        if sub is not None:
            frame["sub"] = sub
        elif query is not None:
            frame["query"] = query
        else:
            raise ValueError("unsubscribe needs a sub id or a query name")
        return int(self._request(frame)["removed"])

    def stats(self) -> dict[str, Any]:
        """Server telemetry: registry JSON, Prometheus text, ranked
        per-query cost accounts, the composite pressure reading, and the
        shedding snapshot (``None`` when the server runs ``off``)."""
        reply = self._request({"op": "stats"})
        return {
            "metrics": reply["metrics"],
            "prom": reply["prom"],
            "cost_accounts": reply.get("cost_accounts", []),
            "pressure": reply.get("pressure", {}),
            "shedding": reply.get("shedding"),
        }

    def trace(self, query: str, emission: int = -1) -> dict[str, Any]:
        """Provenance of one emission: spans, rank keys, and the remote
        trace contexts stamped on its contributing events (``shards == 1``
        servers only; negative indices count from the latest emission)."""
        reply = self._request(
            {"op": "trace", "query": query, "emission": emission}
        )
        return reply["trace"]

    # -- emissions -------------------------------------------------------------

    def pop_emissions(self) -> list[dict[str, Any]]:
        """All buffered emission frames, in arrival order."""
        drained = list(self._emissions)
        self._emissions.clear()
        return drained

    def pop_notices(self) -> list[dict[str, Any]]:
        """Buffered ``unsubscribed`` notices (query unregistered)."""
        drained = list(self._notices)
        self._notices.clear()
        return drained

    def wait_emission(self, timeout: float | None = None) -> dict[str, Any] | None:
        """Block for the next emission frame; ``None`` on timeout."""
        if self._emissions:
            return self._emissions.popleft()
        self._sock.settimeout(timeout if timeout is not None else self.timeout)
        try:
            while True:
                self._classify(read_frame_blocking(self._sock, _UNCAPPED))
                if self._emissions:
                    return self._emissions.popleft()
        except socket.timeout:
            return None
        finally:
            self._sock.settimeout(self.timeout)

    def drain(self, timeout: float | None = None) -> list[dict[str, Any]]:
        """Read until the server's ``bye`` (or EOF); returns every emission
        frame collected on the way — the final flush of a draining server."""
        self._sock.settimeout(timeout if timeout is not None else self.timeout)
        try:
            while True:
                self._classify(read_frame_blocking(self._sock, _UNCAPPED))
        except (ServerClosed, ConnectionClosed, socket.timeout, OSError):
            pass
        finally:
            with_default = self.timeout
            try:
                self._sock.settimeout(with_default)
            except OSError:
                pass
        return self.pop_emissions()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Say ``bye`` (best effort) and close the socket."""
        if self._closed:
            return
        try:
            self._request({"op": "bye"})
        except (
            CEPRServeError,
            ConnectionClosed,
            socket.timeout,
            OSError,
        ):
            pass
        finally:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "CEPRClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
