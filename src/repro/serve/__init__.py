"""Network serving layer: a CEPR engine behind a TCP frame protocol.

The CEPR paper positions the system as a long-running service many
independent consumers observe in real time; this package provides that
network boundary with zero dependencies beyond the standard library:

* :mod:`repro.serve.protocol` — the versioned, length-prefixed JSON
  frame codec and the ``CEPR5xx`` typed error codes;
* :mod:`repro.serve.server` — :class:`CEPRServer`, the asyncio TCP
  server over a :class:`~repro.runtime.concurrent.ThreadedEngineRunner`
  or a :class:`~repro.runtime.sharded.ShardedEngineRunner` (started by
  ``cepr serve``);
* :mod:`repro.serve.subscriptions` — per-query fan-out with bounded
  per-client queues and an explicit slow-consumer policy;
* :mod:`repro.serve.client` — :class:`CEPRClient`, the blocking SDK
  (see ``examples/remote_client.py``).

Protocol spec and failure semantics: ``docs/SERVING.md``.
"""

from repro.serve.client import CEPRClient, CEPRServeError, ServerClosed
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameError,
    decode_payload,
    encode_frame,
)
from repro.serve.server import CEPRServer
from repro.serve.subscriptions import QueryFeed, ServeStats

__all__ = [
    "CEPRClient",
    "CEPRServeError",
    "CEPRServer",
    "ConnectionClosed",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameError",
    "PROTOCOL_VERSION",
    "QueryFeed",
    "ServeStats",
    "ServerClosed",
    "decode_payload",
    "encode_frame",
]
