"""Server-side fan-out: one engine subscription per query, many clients.

The engine (or sharded fleet) delivers emissions on *its* threads — the
runner's consumer thread, or whichever thread ran a merge barrier.  A
:class:`QueryFeed` owns the single engine-side
:class:`~repro.runtime.sinks.Subscription` for one query and trampolines
every emission onto the server's event loop with
``loop.call_soon_threadsafe``; on the loop it serialises the emission
once (:func:`~repro.runtime.serialize.emission_to_json`) and offers the
frame to each subscribed connection's bounded outbound queue.

Backpressure is therefore per *client*, never per engine: a slow
consumer fills only its own queue, and the connection's configured
policy (drop-and-count or disconnect) decides what happens next — the
engine threads never block on a socket.
"""

from __future__ import annotations

import asyncio
from typing import Any, Protocol

from repro.ranking.emission import Emission, EmissionKind
from repro.runtime.serialize import emission_to_json
from repro.runtime.sinks import Subscription, normalize_kinds


class ServeStats:
    """Plain server counters; the metrics registry reads them via ``fn=``."""

    def __init__(self) -> None:
        self.connections_total = 0
        self.connections_active = 0
        self.frames_received = 0
        self.frames_sent = 0
        self.events_ingested = 0
        self.emissions_fanned_out = 0
        self.emissions_dropped = 0
        self.slow_consumer_disconnects = 0
        self.protocol_errors = 0
        self.checkpoints_saved = 0
        #: deepest any connection's outbound queue has been (fan-out hwm).
        self.subscriber_queue_high_water = 0


class Deliverable(Protocol):
    """What a feed needs from a connection: a non-blocking frame offer.

    ``outbox_depth`` is optional (feeds probe it with ``getattr``): when
    present it reports the connection's current outbound-queue depth, the
    input to the serving layer's subscriber-pressure gauge.
    """

    def offer(self, frame: dict[str, Any]) -> bool: ...

    def outbox_depth(self) -> int: ...


class _FeedSubscriber:
    __slots__ = ("connection", "sub_id", "kinds")

    def __init__(
        self,
        connection: Deliverable,
        sub_id: int,
        kinds: frozenset[EmissionKind] | None,
    ) -> None:
        self.connection = connection
        self.sub_id = sub_id
        self.kinds = kinds


class QueryFeed:
    """Fan-out hub for one query's emission stream.

    ``attach`` installs the single engine-side subscription (all kinds;
    per-client filters apply at fan-out).  ``dispatch`` runs on the event
    loop and is the only place subscriber state is touched, so no locking
    is needed.
    """

    def __init__(
        self, name: str, loop: asyncio.AbstractEventLoop, stats: ServeStats
    ) -> None:
        self.name = name
        self._loop = loop
        self._stats = stats
        self._subscribers: dict[tuple[int, int], _FeedSubscriber] = {}
        self.subscription: Subscription | None = None
        #: Monotonic per-query emission sequence, stamped on each frame so
        #: clients can detect drops under the "drop" slow-consumer policy.
        self.emission_seq = 0

    def attach(self, subscribe: Any) -> None:
        """Install the engine-side subscription via ``subscribe(cb)``."""
        self.subscription = subscribe(self._on_emission)

    def detach(self) -> None:
        if self.subscription is not None:
            self.subscription.cancel()
            self.subscription = None

    # -- engine threads ------------------------------------------------------

    def _on_emission(self, emission: Emission) -> None:
        try:
            self._loop.call_soon_threadsafe(self.dispatch, emission)
        except RuntimeError:
            # Loop already closed (late flush during teardown): the
            # emission has nowhere to go; drop it rather than kill the
            # engine thread.
            pass

    # -- event loop ----------------------------------------------------------

    def dispatch(self, emission: Emission) -> None:
        """Serialise once and offer the frame to every live subscriber."""
        self.emission_seq += 1
        if not self._subscribers:
            return
        doc = emission_to_json(emission)
        for subscriber in list(self._subscribers.values()):
            if (
                subscriber.kinds is not None
                and emission.kind not in subscriber.kinds
            ):
                continue
            delivered = subscriber.connection.offer(
                {
                    "op": "emission",
                    "query": self.name,
                    "sub": subscriber.sub_id,
                    "seq": self.emission_seq,
                    "emission": doc,
                }
            )
            if delivered:
                self._stats.emissions_fanned_out += 1

    def add_subscriber(
        self,
        connection: Deliverable,
        connection_id: int,
        sub_id: int,
        kinds: Any = None,
    ) -> None:
        """Register one (connection, sub) pair; ``kinds`` as in subscribe."""
        self._subscribers[(connection_id, sub_id)] = _FeedSubscriber(
            connection, sub_id, normalize_kinds(kinds)
        )

    def remove_subscriber(self, connection_id: int, sub_id: int) -> bool:
        return self._subscribers.pop((connection_id, sub_id), None) is not None

    def drop_connection(self, connection_id: int) -> int:
        """Remove every subscription held by one connection."""
        doomed = [key for key in self._subscribers if key[0] == connection_id]
        for key in doomed:
            del self._subscribers[key]
        return len(doomed)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def max_outbox_depth(self) -> int:
        """Deepest outbound queue among this feed's subscribers, now.

        Connections that don't expose a depth (minimal test doubles)
        count as empty — the gauge cares about real fan-out backlog.
        """
        deepest = 0
        for subscriber in self._subscribers.values():
            probe = getattr(subscriber.connection, "outbox_depth", None)
            if probe is None:
                continue
            depth = probe()
            if depth > deepest:
                deepest = depth
        return deepest

    def notify_unsubscribed(self, reason: str) -> None:
        """Tell every subscriber delivery ended (query unregistered)."""
        for subscriber in list(self._subscribers.values()):
            subscriber.connection.offer(
                {
                    "op": "unsubscribed",
                    "query": self.name,
                    "sub": subscriber.sub_id,
                    "reason": reason,
                }
            )
        self._subscribers.clear()
