"""``CEPRServer``: the asyncio TCP front end over an engine runner.

Threading model — three layers, one direction of blocking each:

* **Event loop** (this module): frame parsing, connection state, fan-out
  queues.  Never calls the engine directly; every blocking runtime call
  goes through ``asyncio.to_thread``.
* **Runner threads**: a :class:`~repro.runtime.concurrent.ThreadedEngineRunner`,
  :class:`~repro.runtime.sharded.ShardedEngineRunner`, or
  :class:`~repro.runtime.process.ProcessShardedRunner` (chosen by
  ``runner_backend``, built via :func:`~repro.runtime.runner.create_runner`)
  consumes submitted events and delivers emissions to the per-query
  :class:`~repro.serve.subscriptions.QueryFeed` subscriptions, which
  trampoline back onto the loop.
* **Client connections**: each has a bounded outbound queue and a writer
  task.  Emission frames are offered without blocking (slow-consumer
  policy: drop-and-count or disconnect); acks/errors await queue space,
  which naturally stalls that client's request stream instead of the
  server.

Graceful drain (SIGTERM/SIGINT or :meth:`CEPRServer.request_drain`):
stop accepting connections, refuse further mutations with ``CEPR508``,
take a final checkpoint (when configured) *before* the terminal flush,
flush the runner so final emissions reach subscribers, then send every
connection a ``bye`` frame and close.  See docs/SERVING.md.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
from pathlib import Path
from typing import Any, Awaitable, Callable

from repro.events.event import Event
from repro.language.errors import CEPRError
from repro.observability.flightrec import current as flightrec_current
from repro.observability.flightrec import dump_if_armed
from repro.observability.log import get_logger
from repro.observability.tracing import remote_contexts
from repro.runtime.concurrent import ThreadedEngineRunner
from repro.runtime.metrics import LatencyRecorder
from repro.runtime.runner import RunnerConfig, create_runner
from repro.runtime.serialize import event_from_json
from repro.runtime.sharded import ShardedEngineRunner
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    E_BAD_HELLO,
    E_DRAINING,
    E_INTERNAL,
    E_INVALID_ARGUMENT,
    E_INVALID_EVENT,
    E_QUERY_REJECTED,
    E_UNKNOWN_OP,
    E_UNKNOWN_QUERY,
    E_UNSUPPORTED,
    FrameError,
    ack_frame,
    encode_frame,
    error_frame,
    read_frame,
)
from repro.serve.subscriptions import QueryFeed, ServeStats

_log = get_logger(__name__)

#: Outbound frames are never size-capped: the limit guards the server
#: against hostile *clients*, not its own emission payloads.
_UNCAPPED = 2**31 - 1


class _Connection:
    """Per-client state: outbound queue, writer task, subscriptions."""

    def __init__(
        self,
        cid: int,
        writer: asyncio.StreamWriter,
        outbound_queue: int,
        slow_consumer: str,
        stats: ServeStats,
    ) -> None:
        self.cid = cid
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=outbound_queue)
        self.outbox_capacity = outbound_queue
        self.outbox_high_water = 0
        self.slow_consumer = slow_consumer
        self.stats = stats
        self.closing = False
        self.dropped = 0
        self.subs: dict[int, str] = {}  # sub_id -> query name
        self._next_sub = 0
        self.writer_task: asyncio.Task | None = None
        #: opaque client context from HELLO, merged into every push.
        self.trace_context: dict[str, Any] | None = None

    def alloc_sub(self) -> int:
        self._next_sub += 1
        return self._next_sub

    # -- outbound ------------------------------------------------------------

    def offer(self, frame: dict[str, Any]) -> bool:
        """Non-blocking delivery (emission fan-out path)."""
        if self.closing:
            return False
        try:
            self.outbox.put_nowait(frame)
            depth = self.outbox.qsize()
            if depth > self.outbox_high_water:
                self.outbox_high_water = depth
            if depth > self.stats.subscriber_queue_high_water:
                self.stats.subscriber_queue_high_water = depth
            return True
        except asyncio.QueueFull:
            if self.slow_consumer == "drop":
                self.dropped += 1
                self.stats.emissions_dropped += 1
                return False
            self.stats.slow_consumer_disconnects += 1
            _log.warning(
                "connection %d: outbound queue full, disconnecting slow "
                "consumer",
                self.cid,
            )
            self.abort()
            return False

    def outbox_depth(self) -> int:
        """Current outbound-queue depth (subscriber-pressure input)."""
        return self.outbox.qsize()

    async def send(self, frame: dict[str, Any]) -> None:
        """Reliable delivery (acks/errors): waits for queue space."""
        if self.closing:
            return
        await self.outbox.put(frame)

    def abort(self) -> None:
        """Tear the connection down immediately (loop thread only)."""
        if self.closing:
            return
        self.closing = True
        # Unblock any send() waiting on a full queue.
        while True:
            try:
                self.outbox.get_nowait()
            except asyncio.QueueEmpty:
                break
        with contextlib.suppress(Exception):
            transport = self.writer.transport
            if transport is not None:
                transport.abort()

    async def finish(self, frame: dict[str, Any] | None = None) -> None:
        """Graceful close: flush ``frame`` (if any), then stop the writer."""
        if frame is not None and not self.closing:
            await self.outbox.put(frame)
        if not self.closing:
            await self.outbox.put(None)

    async def _writer_loop(self) -> None:
        try:
            while True:
                frame = await self.outbox.get()
                if frame is None:
                    break
                self.writer.write(encode_frame(frame, _UNCAPPED))
                await self.writer.drain()
                self.stats.frames_sent += 1
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self.closing = True
            with contextlib.suppress(Exception):
                self.writer.close()


class CEPRServer:
    """A CEPR engine (or sharded fleet) behind a TCP frame protocol.

    Parameters
    ----------
    queries:
        ``{name: query_text}`` registered before the server starts
        (``threaded`` servers also accept REGISTER frames at runtime).
    runner_backend:
        Execution backend behind the frame protocol: ``"threaded"``
        (one engine, dynamic queries), ``"sharded"`` (partition-parallel
        worker threads), or ``"process"`` (worker processes fed over
        pipe frames — see docs/PROCESS_RUNNER.md).  ``None`` infers from
        ``shards``: 1 → threaded, >1 → sharded.  Sharded/process merged
        emissions are released on a ``poll_interval`` cadence and at
        barriers.
    shards:
        Worker count for the sharded/process backends.
    checkpoint_dir / checkpoint_every / resume:
        Crash-recovery wiring (see docs/RECOVERY.md): snapshot every N
        ingested events and at drain; ``resume`` restores the latest
        valid checkpoint at startup.
    max_frame_bytes / read_timeout:
        Hostile-input guards: inbound frame size cap and the slow-loris
        payload timeout (idle connections between frames are fine).
    outbound_queue / slow_consumer:
        Per-connection fan-out queue bound and the policy when a
        subscriber falls behind: ``"disconnect"`` (default) or ``"drop"``
        (count and continue; clients detect gaps via the per-query
        ``seq`` stamp on emission frames).
    sanitize:
        Attach CEPRSan (``None`` follows ``CEPR_SANITIZE``; see
        docs/SANITIZER.md): runtime engines carry the invariant
        sanitizer and the serve loop runs the blocking-call watchdog.
        Watchdog trips are always log-and-count (a stalled loop cannot
        usefully raise), surfaced as ``serve_sanitizer_trips_total``.
    shed_policy / latency_target:
        Overload control (see docs/SHEDDING.md): ``"off"`` (default),
        ``"exact"`` (bound-certified elides, byte-identical output), or
        ``"adaptive"`` (rank-weighted lossy sampling steered toward the
        ``latency_target`` ingest-lag budget, in seconds).  Shed counters
        surface in STATS frames and the Prometheus export.
    """

    def __init__(
        self,
        queries: dict[str, str] | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 1,
        enable_pruning: bool = True,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 1000,
        resume: bool = False,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        read_timeout: float = 30.0,
        outbound_queue: int = 256,
        slow_consumer: str = "disconnect",
        poll_interval: float = 0.05,
        max_queue: int = 10_000,
        batch_size: int = 256,
        sanitize: bool | None = None,
        tracing: bool = False,
        shed_policy: str = "off",
        latency_target: float | None = None,
        runner_backend: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if runner_backend is None:
            runner_backend = "threaded" if shards == 1 else "sharded"
        if runner_backend not in ("threaded", "sharded", "process"):
            raise ValueError(
                "runner_backend must be threaded|sharded|process, "
                f"got {runner_backend!r}"
            )
        if runner_backend == "threaded" and shards > 1:
            raise ValueError(
                "the threaded backend is single-engine; use "
                "runner_backend='sharded' or 'process' for shards > 1"
            )
        if runner_backend == "process" and shed_policy != "off":
            raise ValueError(
                "load shedding is not supported on the process backend "
                "(worker engine state is only mirrored at barriers)"
            )
        if shed_policy not in ("off", "exact", "adaptive"):
            raise ValueError(
                f"shed_policy must be off|exact|adaptive, got {shed_policy!r}"
            )
        if slow_consumer not in ("disconnect", "drop"):
            raise ValueError(
                f"slow_consumer must be 'disconnect' or 'drop', "
                f"got {slow_consumer!r}"
            )
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if resume and checkpoint_dir is None:
            raise ValueError("resume requires checkpoint_dir")
        self.queries = dict(queries or {})
        self.host = host
        self.port = port
        self.runner_backend = runner_backend
        self.shards = shards
        self.enable_pruning = enable_pruning
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.max_frame_bytes = max_frame_bytes
        self.read_timeout = read_timeout
        self.outbound_queue = outbound_queue
        self.slow_consumer = slow_consumer
        self.poll_interval = poll_interval
        self.max_queue = max_queue
        self.batch_size = batch_size
        self.shed_policy = shed_policy
        self.latency_target = latency_target
        #: span tracing on the engine from the start (``trace`` op wants
        #: run-lifecycle competition tallies; provenance works without).
        self.tracing = tracing
        if sanitize is None:
            from repro.sanitize.core import sanitizer_enabled

            sanitize = sanitizer_enabled()
        self.sanitize = sanitize
        #: CEPRSan reporter for serving-layer checks (loop-stall watchdog).
        self.sanitizer = None
        self._watchdog = None
        if sanitize:
            from repro.sanitize.core import Sanitizer

            self.sanitizer = Sanitizer(scope="serve")

        self.stats = ServeStats()
        self.bound_port: int | None = None
        self._runner: ThreadedEngineRunner | ShardedEngineRunner | None = None
        self._feeds: dict[str, QueryFeed] = {}
        self._connections: dict[int, _Connection] = {}
        self._next_cid = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._tcp_server: asyncio.base_events.Server | None = None
        self._poll_task: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self._drained: asyncio.Event | None = None
        self._draining = False
        self._ingest_lock: asyncio.Lock | None = None
        self._store = None
        self._last_event_ts = 0.0
        self._ingest_latency = LatencyRecorder()
        self._handlers: dict[
            str, Callable[[_Connection, dict], Awaitable[bool]]
        ] = {
            "ping": self._op_ping,
            "push": self._op_push,
            "push_batch": self._op_push_batch,
            "advance": self._op_advance,
            "sync": self._op_sync,
            "register": self._op_register,
            "unregister": self._op_unregister,
            "subscribe": self._op_subscribe,
            "unsubscribe": self._op_unsubscribe,
            "stats": self._op_stats,
            "trace": self._op_trace,
            "bye": self._op_bye,
        }

    # -- lifecycle -----------------------------------------------------------

    async def serve(
        self, on_ready: Callable[["CEPRServer"], None] | None = None
    ) -> None:
        """Run until drained (SIGTERM/SIGINT or :meth:`request_drain`)."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._ingest_lock = asyncio.Lock()
        self._start_runtime()
        self._tcp_server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.bound_port = self._tcp_server.sockets[0].getsockname()[1]
        installed: list[signal.Signals] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_drain)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        if hasattr(signal, "SIGUSR2") and flightrec_current() is not None:
            try:
                self._loop.add_signal_handler(
                    signal.SIGUSR2, self._dump_flight_recorder, "sigusr2"
                )
                installed.append(signal.SIGUSR2)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        if self.runner_backend != "threaded":
            self._poll_task = self._loop.create_task(self._poll_loop())
        if self.sanitizer is not None:
            from repro.sanitize.aio import LoopStallWatchdog

            self._watchdog = LoopStallWatchdog(self.sanitizer).start()
        _log.info(
            "cepr serve listening on %s:%d (%d quer%s, %d shard%s)",
            self.host,
            self.bound_port,
            len(self._feeds),
            "y" if len(self._feeds) == 1 else "ies",
            self.shards,
            "" if self.shards == 1 else "s",
        )
        if on_ready is not None:
            on_ready(self)
        try:
            await self._drained.wait()
        finally:
            if self._watchdog is not None:
                self._watchdog.stop()
                self._watchdog = None
            for signum in installed:
                with contextlib.suppress(Exception):
                    self._loop.remove_signal_handler(signum)
            if self._tcp_server is not None:
                self._tcp_server.close()
            if self._runner is not None:
                with contextlib.suppress(Exception):
                    await asyncio.to_thread(self._runner.stop)

    def request_drain(self) -> None:
        """Begin graceful drain (idempotent; loop thread only)."""
        if self._drain_task is None and self._loop is not None:
            self._drain_task = self._loop.create_task(self._drain())

    def request_drain_threadsafe(self) -> None:
        """Begin graceful drain from any thread."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_drain)

    def _dump_flight_recorder(self, reason: str) -> None:
        """Schedule a flight-recorder dump off the loop (SIGUSR2 path)."""
        if self._loop is None:
            return
        self._loop.create_task(
            asyncio.to_thread(dump_if_armed, reason, self.checkpoint_dir)
        )

    def _start_runtime(self) -> None:
        assert self._loop is not None
        tracing: bool | None = None
        if self.tracing:
            if self.runner_backend == "threaded":
                tracing = True
            else:
                _log.warning(
                    "tracing requested on the %s backend; span tracing is "
                    "per-engine and the trace op needs --runner threaded "
                    "— ignoring",
                    self.runner_backend,
                )
        runner = create_runner(
            self.queries,
            RunnerConfig(
                backend=self.runner_backend,
                shards=self.shards,
                enable_pruning=self.enable_pruning,
                max_queue=self.max_queue,
                batch_size=self.batch_size,
                sanitize=self.sanitize,
                shed_policy=self.shed_policy,
                latency_target=self.latency_target,
                tracing=tracing,
            ),
        )
        assert isinstance(
            runner, (ThreadedEngineRunner, ShardedEngineRunner)
        )
        self._runner = runner
        for name in self.queries:
            feed = QueryFeed(name, self._loop, self.stats)
            # Unified attach: every backend exposes the Runner protocol's
            # subscribe (per-client `kinds` filters are applied at the
            # feed's fan-out, so the feed itself taps all kinds).
            feed.attach(lambda cb, name=name: runner.subscribe(name, cb))
            self._feeds[name] = feed
        runner.start()
        # Fold the fullest subscriber outbound queue into the runner's
        # composite pressure score: the runner's own `pressure` gauge is
        # already registered (get-or-create registry), so instead of a
        # second gauge the runner consults this hook on every sample.
        self._runner.subscriber_pressure_provider = lambda: (
            self._max_outbox_depth(),
            self.outbound_queue,
        )
        if self.checkpoint_dir is not None:
            from repro.store.checkpoint import CheckpointStore

            self._store = CheckpointStore(self.checkpoint_dir)
            if self.resume:
                self._restore_latest()

    def _restore_latest(self) -> None:
        assert self._store is not None and self._runner is not None
        checkpoint = self._store.latest()
        if checkpoint is None:
            _log.warning(
                "resume: no valid checkpoint in %s, starting fresh",
                self._store.directory,
            )
            return
        self._runner.restore(checkpoint.state)
        self.stats.events_ingested = checkpoint.position.events_consumed
        self._last_event_ts = checkpoint.position.last_ts
        _log.info(
            "resumed from %s (%d events already consumed)",
            checkpoint.path.name,
            checkpoint.position.events_consumed,
        )

    async def _poll_loop(self) -> None:
        """Sharded mode: release mergeable emissions on a cadence."""
        assert isinstance(self._runner, ShardedEngineRunner)
        runner = self._runner
        while not self._draining:
            await asyncio.sleep(self.poll_interval)
            if self._draining:
                return
            with contextlib.suppress(RuntimeError):
                await asyncio.to_thread(runner.poll)

    async def _drain(self) -> None:
        """Flush, checkpoint, notify, close — the SIGTERM path.

        Every step is damage-tolerant: whatever state the runtime died
        in, ``_drained`` is always set so :meth:`serve` returns.
        """
        self._draining = True
        try:
            _log.info("draining: flushing %d quer(ies)", len(self._feeds))
            assert self._tcp_server is not None
            assert self._ingest_lock is not None
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            if self._poll_task is not None:
                self._poll_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._poll_task
            async with self._ingest_lock:
                # Checkpoint BEFORE the terminal flush: flushing emits
                # partial-window results a restored run must produce
                # again, so the snapshot captures the pre-flush state.
                if self._store is not None:
                    try:
                        await asyncio.to_thread(self._checkpoint_blocking)
                    except Exception:
                        _log.exception(
                            "drain checkpoint failed; continuing shutdown"
                        )
                assert self._runner is not None
                with contextlib.suppress(Exception):
                    await asyncio.to_thread(self._runner.stop)
            # Every emission scheduled by the final flush was queued on
            # the loop before to_thread's completion callback, so by this
            # line the fan-out queues already hold the final frames.
            for connection in list(self._connections.values()):
                await connection.finish({"op": "bye", "reason": "drained"})
            writers = [
                connection.writer_task
                for connection in self._connections.values()
                if connection.writer_task is not None
            ]
            if writers:
                done, pending = await asyncio.wait(writers, timeout=10.0)
                for task in pending:
                    task.cancel()
        finally:
            # A drain is the last chance to flush the black box: a
            # SIGTERM'd server must leave its postmortem behind even when
            # nothing went wrong (no-op when the recorder is unarmed).
            with contextlib.suppress(Exception):
                await asyncio.to_thread(
                    dump_if_armed, "drain", self.checkpoint_dir
                )
            assert self._drained is not None
            self._drained.set()

    # -- checkpointing ---------------------------------------------------------

    def _checkpoint_blocking(self) -> None:
        """Sync the runtime and persist a snapshot (runner threads idle)."""
        from repro.store.checkpoint import Position

        assert self._store is not None and self._runner is not None
        if isinstance(self._runner, ThreadedEngineRunner):
            with contextlib.suppress(RuntimeError):
                self._runner.sync()
        state = self._runner.snapshot()
        last_seq = int(state["sequencer"]["next_seq"]) - 1
        self._store.save(
            state,
            Position(
                events_consumed=self.stats.events_ingested,
                last_seq=last_seq,
                last_ts=self._last_event_ts,
            ),
        )
        self.stats.checkpoints_saved += 1

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._next_cid += 1
        connection = _Connection(
            self._next_cid,
            writer,
            self.outbound_queue,
            self.slow_consumer,
            self.stats,
        )
        assert self._loop is not None
        connection.writer_task = self._loop.create_task(
            connection._writer_loop()
        )
        self._connections[connection.cid] = connection
        self.stats.connections_total += 1
        self.stats.connections_active += 1
        try:
            if await self._handshake(connection, reader):
                await self._serve_requests(connection, reader)
        finally:
            self.stats.connections_active -= 1
            self._connections.pop(connection.cid, None)
            for feed in self._feeds.values():
                feed.drop_connection(connection.cid)
            if not connection.closing:
                await connection.finish()
            if connection.writer_task is not None:
                # CancelledError too: abort() cancels the writer task, and
                # suppress(Exception) would let it escape into the loop's
                # exception handler as noise.
                with contextlib.suppress(Exception, asyncio.CancelledError):
                    await asyncio.wait_for(connection.writer_task, timeout=5.0)

    async def _handshake(
        self, connection: _Connection, reader: asyncio.StreamReader
    ) -> bool:
        """First frame must be a well-versioned HELLO, within the timeout."""
        try:
            frame = await asyncio.wait_for(
                read_frame(reader, self.max_frame_bytes, self.read_timeout),
                timeout=self.read_timeout,
            )
        except (ConnectionClosed, asyncio.TimeoutError):
            return False
        except FrameError as exc:
            self.stats.protocol_errors += 1
            await connection.send(error_frame(exc.code, str(exc)))
            return False
        if frame["op"] != "hello" or frame.get("version") != PROTOCOL_VERSION:
            self.stats.protocol_errors += 1
            await connection.send(
                error_frame(
                    E_BAD_HELLO,
                    f"expected hello with version={PROTOCOL_VERSION}, "
                    f"got op={frame['op']!r} "
                    f"version={frame.get('version')!r}",
                    frame.get("id"),
                )
            )
            return False
        trace_context = frame.get("trace")
        if trace_context is not None and not isinstance(trace_context, dict):
            self.stats.protocol_errors += 1
            await connection.send(
                error_frame(
                    E_BAD_HELLO,
                    f"hello 'trace' must be an object, "
                    f"got {type(trace_context).__name__}",
                    frame.get("id"),
                )
            )
            return False
        connection.trace_context = trace_context
        self.stats.frames_received += 1
        await connection.send(
            ack_frame(
                frame,
                version=PROTOCOL_VERSION,
                server="cepr",
                shards=self.shards,
                queries=sorted(self._feeds),
            )
        )
        return True

    async def _serve_requests(
        self, connection: _Connection, reader: asyncio.StreamReader
    ) -> None:
        while not connection.closing:
            try:
                frame = await read_frame(
                    reader, self.max_frame_bytes, self.read_timeout
                )
            except ConnectionClosed:
                return
            except FrameError as exc:
                self.stats.protocol_errors += 1
                await connection.send(error_frame(exc.code, str(exc)))
                if exc.fatal:
                    return
                continue
            self.stats.frames_received += 1
            handler = self._handlers.get(frame["op"])
            if handler is None:
                self.stats.protocol_errors += 1
                await connection.send(
                    error_frame(
                        E_UNKNOWN_OP,
                        f"unknown op {frame['op']!r}",
                        frame.get("id"),
                    )
                )
                continue
            try:
                if await handler(connection, frame):
                    return
            except FrameError as exc:
                self.stats.protocol_errors += 1
                await connection.send(
                    error_frame(exc.code, str(exc), frame.get("id"))
                )
                if exc.fatal:
                    return
            except Exception as exc:  # pragma: no cover - defensive
                _log.exception("internal error handling %r", frame.get("op"))
                # Black-box postmortem: an internal error is exactly what
                # the flight recorder exists for (no-op when unarmed).
                await asyncio.to_thread(
                    dump_if_armed, "serve-internal-error", self.checkpoint_dir
                )
                await connection.send(
                    error_frame(
                        E_INTERNAL, f"internal error: {exc}", frame.get("id")
                    )
                )
                return

    # -- op handlers -----------------------------------------------------------

    async def _op_ping(self, connection: _Connection, frame: dict) -> bool:
        fields = {"t": frame["t"]} if "t" in frame else {}
        await connection.send(ack_frame(frame, **fields))
        return False

    def _decode_event(self, doc: Any) -> Event:
        if not isinstance(doc, dict):
            raise FrameError(
                E_INVALID_EVENT,
                f"event must be an object, got {type(doc).__name__}",
            )
        try:
            event = event_from_json(doc)
        except (KeyError, TypeError, ValueError) as exc:
            raise FrameError(
                E_INVALID_EVENT, f"invalid event document: {exc}"
            ) from exc
        if isinstance(event.timestamp, bool) or not isinstance(
            event.timestamp, (int, float)
        ):
            raise FrameError(
                E_INVALID_EVENT,
                f"event timestamp must be a number, "
                f"got {type(event.timestamp).__name__}",
            )
        return event

    def _require_live(self) -> None:
        if self._draining:
            raise FrameError(E_DRAINING, "server is draining; try elsewhere")

    def _merged_trace(
        self, connection: _Connection, frame: dict
    ) -> dict[str, Any] | None:
        """HELLO context overlaid with the frame's own ``trace`` object."""
        frame_trace = frame.get("trace")
        if frame_trace is not None and not isinstance(frame_trace, dict):
            raise FrameError(
                E_INVALID_ARGUMENT,
                f"'trace' must be an object, got {type(frame_trace).__name__}",
            )
        if connection.trace_context is None and frame_trace is None:
            return None
        merged = dict(connection.trace_context or {})
        if frame_trace:
            merged.update(frame_trace)
        return merged or None

    async def _op_push(self, connection: _Connection, frame: dict) -> bool:
        self._require_live()
        trace = self._merged_trace(connection, frame)
        event = self._decode_event(frame.get("event"))
        if trace is not None:
            event.trace = trace
        await self._ingest([event])
        await connection.send(ack_frame(frame, accepted=1))
        return False

    async def _op_push_batch(self, connection: _Connection, frame: dict) -> bool:
        self._require_live()
        trace = self._merged_trace(connection, frame)
        docs = frame.get("events")
        if not isinstance(docs, list):
            raise FrameError(
                E_INVALID_ARGUMENT, "push_batch requires an 'events' array"
            )
        events = [self._decode_event(doc) for doc in docs]
        if trace is not None:
            for event in events:
                event.trace = trace
        if events:
            await self._ingest(events)
        await connection.send(ack_frame(frame, accepted=len(events)))
        return False

    async def _op_advance(self, connection: _Connection, frame: dict) -> bool:
        self._require_live()
        timestamp = frame.get("t")
        if isinstance(timestamp, bool) or not isinstance(
            timestamp, (int, float)
        ):
            raise FrameError(
                E_INVALID_ARGUMENT, "advance requires a numeric 't'"
            )
        assert self._runner is not None and self._ingest_lock is not None
        async with self._ingest_lock:
            await asyncio.to_thread(self._runner.advance_time, float(timestamp))
        await connection.send(ack_frame(frame))
        return False

    async def _op_sync(self, connection: _Connection, frame: dict) -> bool:
        """Read-your-writes barrier; also releases mergeable sharded output."""
        self._require_live()
        assert self._runner is not None
        if isinstance(self._runner, ShardedEngineRunner):
            await asyncio.to_thread(self._runner.poll)
        else:
            await asyncio.to_thread(self._runner.sync)
        # Emission dispatches scheduled before the barrier's completion
        # callback have already run, so this ack trails them in order.
        await connection.send(
            ack_frame(frame, events_ingested=self.stats.events_ingested)
        )
        return False

    async def _op_register(self, connection: _Connection, frame: dict) -> bool:
        self._require_live()
        if self.runner_backend != "threaded":
            raise FrameError(
                E_UNSUPPORTED,
                "REGISTER is unsupported on a sharded fleet (placement is "
                "fixed at start); run with --runner threaded for dynamic "
                "queries",
            )
        text = frame.get("query")
        if not isinstance(text, str) or not text.strip():
            raise FrameError(
                E_INVALID_ARGUMENT, "register requires a 'query' string"
            )
        name = frame.get("name")
        if name is not None and not isinstance(name, str):
            raise FrameError(E_INVALID_ARGUMENT, "'name' must be a string")
        runner = self._runner
        assert isinstance(runner, ThreadedEngineRunner)
        try:
            handle = await asyncio.to_thread(
                runner.register_query, text, name
            )
        except CEPRError as exc:
            raise FrameError(
                E_QUERY_REJECTED, f"query rejected: {exc}"
            ) from exc
        assert self._loop is not None
        feed = QueryFeed(handle.name, self._loop, self.stats)
        await asyncio.to_thread(
            feed.attach, lambda cb: runner.subscribe(handle.name, cb)
        )
        self._feeds[handle.name] = feed
        await connection.send(ack_frame(frame, query=handle.name))
        return False

    async def _op_unregister(self, connection: _Connection, frame: dict) -> bool:
        self._require_live()
        if self.runner_backend != "threaded":
            raise FrameError(
                E_UNSUPPORTED,
                "UNREGISTER is unsupported on a sharded fleet",
            )
        name = frame.get("name")
        if name not in self._feeds:
            raise FrameError(
                E_UNKNOWN_QUERY, f"no query named {name!r} is registered"
            )
        feed = self._feeds.pop(name)
        feed.notify_unsubscribed("unregistered")
        feed.subscription = None  # engine close_sinks owns it now
        runner = self._runner
        assert isinstance(runner, ThreadedEngineRunner)
        await asyncio.to_thread(runner.unregister_query, name)
        await connection.send(ack_frame(frame, query=name))
        return False

    async def _op_subscribe(self, connection: _Connection, frame: dict) -> bool:
        name = frame.get("query")
        feed = self._feeds.get(name)
        if feed is None:
            raise FrameError(
                E_UNKNOWN_QUERY, f"no query named {name!r} is registered"
            )
        sub_id = connection.alloc_sub()
        try:
            feed.add_subscriber(
                connection, connection.cid, sub_id, frame.get("kinds")
            )
        except ValueError as exc:
            raise FrameError(
                E_INVALID_ARGUMENT, f"bad kinds filter: {exc}"
            ) from exc
        connection.subs[sub_id] = name
        await connection.send(ack_frame(frame, sub=sub_id, query=name))
        return False

    async def _op_unsubscribe(self, connection: _Connection, frame: dict) -> bool:
        removed = 0
        if "sub" in frame:
            sub_id = frame["sub"]
            name = connection.subs.pop(sub_id, None)
            if name is not None and name in self._feeds:
                removed += int(
                    self._feeds[name].remove_subscriber(connection.cid, sub_id)
                )
        elif "query" in frame:
            name = frame["query"]
            doomed = [
                sub_id
                for sub_id, query in connection.subs.items()
                if query == name
            ]
            for sub_id in doomed:
                del connection.subs[sub_id]
                if name in self._feeds:
                    removed += int(
                        self._feeds[name].remove_subscriber(
                            connection.cid, sub_id
                        )
                    )
        else:
            raise FrameError(
                E_INVALID_ARGUMENT, "unsubscribe requires 'sub' or 'query'"
            )
        await connection.send(ack_frame(frame, removed=removed))
        return False

    async def _op_stats(self, connection: _Connection, frame: dict) -> bool:
        registry = await asyncio.to_thread(self.metrics_registry)
        telemetry = await asyncio.to_thread(self._telemetry_blocking)
        await connection.send(
            ack_frame(
                frame,
                metrics=registry.to_json(),
                prom=registry.to_prometheus(),
                **telemetry,
            )
        )
        return False

    def _telemetry_blocking(self) -> dict[str, Any]:
        """Ranked cost accounts, pressure reading, shedding snapshot."""
        from repro.observability.cost import rank_accounts

        assert self._runner is not None
        accounts = rank_accounts(self._runner.cost_accounts().values())
        assessor = self._runner.pressure()
        return {
            "cost_accounts": [account.to_dict() for account in accounts],
            "pressure": {
                **assessor.to_dict(),
                # Normalise the sample's lag component against the
                # assessor's actual budget, not the module default.
                "sample": self._runner.pressure_sample().to_dict(
                    assessor.lag_budget
                ),
            },
            "shedding": self._runner.shed_stats_dict(),
        }

    async def _op_trace(self, connection: _Connection, frame: dict) -> bool:
        if self.runner_backend != "threaded":
            raise FrameError(
                E_UNSUPPORTED,
                "TRACE is unsupported on a sharded fleet (provenance is "
                "per-engine); run with --runner threaded",
            )
        name = frame.get("query")
        if name not in self._feeds:
            raise FrameError(
                E_UNKNOWN_QUERY, f"no query named {name!r} is registered"
            )
        index = frame.get("emission", -1)
        if isinstance(index, bool) or not isinstance(index, int):
            raise FrameError(
                E_INVALID_ARGUMENT, "'emission' must be an integer index"
            )
        doc = await asyncio.to_thread(self._trace_blocking, name, index)
        await connection.send(ack_frame(frame, trace=doc))
        return False

    def _trace_blocking(self, name: str, index: int) -> dict[str, Any]:
        """Build one emission's provenance document (runner thread)."""
        runner = self._runner
        assert isinstance(runner, ThreadedEngineRunner)
        with contextlib.suppress(RuntimeError):
            runner.sync()
        engine = runner.engine
        registered = engine.query(name)
        collector = registered.collector
        emissions = collector.emissions if collector is not None else []
        if not emissions or not -len(emissions) <= index < len(emissions):
            raise FrameError(
                E_INVALID_ARGUMENT,
                f"query {name!r} has {len(emissions)} emission(s); "
                f"index {index} is out of range",
            )
        emission = emissions[index]
        trace = engine.trace(emission)
        doc = trace.to_dict()
        doc["remote"] = remote_contexts(emission)
        doc["text"] = trace.describe()
        # Bindings and rank keys can hold arbitrary attribute values;
        # degrade anything non-JSON to its repr rather than refusing.
        return json.loads(json.dumps(doc, default=str))

    async def _op_bye(self, connection: _Connection, frame: dict) -> bool:
        await connection.finish(ack_frame(frame))
        return True

    # -- ingest ---------------------------------------------------------------

    async def _ingest(self, events: list[Event]) -> None:
        assert self._ingest_lock is not None
        async with self._ingest_lock:
            await asyncio.to_thread(self._submit_blocking, events)
            before = self.stats.events_ingested
            self.stats.events_ingested += len(events)
            if self._store is not None and (
                before // self.checkpoint_every
                != self.stats.events_ingested // self.checkpoint_every
            ):
                await asyncio.to_thread(self._checkpoint_blocking)

    def _submit_blocking(self, events: list[Event]) -> None:
        assert self._runner is not None
        started = time.perf_counter()
        for event in events:
            self._runner.submit(event)
            if event.timestamp > self._last_event_ts:
                self._last_event_ts = event.timestamp
        self._ingest_latency.record(time.perf_counter() - started)

    # -- observability ----------------------------------------------------------

    def _max_outbox_depth(self) -> int:
        """Deepest per-connection outbound queue right now."""
        deepest = 0
        for feed in self._feeds.values():
            depth = feed.max_outbox_depth()
            if depth > deepest:
                deepest = depth
        return deepest

    def metrics_registry(self):
        """The runtime's registry plus the serving layer's instruments."""
        assert self._runner is not None
        registry = self._runner.metrics_registry()
        stats = self.stats
        registry.counter(
            "serve_connections_total",
            "Client connections accepted since start",
            fn=lambda: stats.connections_total,
        )
        registry.gauge(
            "serve_connections_active",
            "Client connections currently open",
            fn=lambda: stats.connections_active,
        )
        registry.counter(
            "serve_frames_received_total",
            "Well-formed request frames received",
            fn=lambda: stats.frames_received,
        )
        registry.counter(
            "serve_frames_sent_total",
            "Frames written to clients (acks, errors, emissions)",
            fn=lambda: stats.frames_sent,
        )
        registry.counter(
            "serve_events_ingested_total",
            "Events accepted over the wire into the runtime",
            fn=lambda: stats.events_ingested,
        )
        registry.counter(
            "serve_emissions_fanned_out_total",
            "Emission frames enqueued to subscribers",
            fn=lambda: stats.emissions_fanned_out,
        )
        registry.counter(
            "serve_emissions_dropped_total",
            "Emission frames dropped by the slow-consumer 'drop' policy",
            fn=lambda: stats.emissions_dropped,
        )
        registry.counter(
            "serve_slow_consumer_disconnects_total",
            "Connections closed by the slow-consumer 'disconnect' policy",
            fn=lambda: stats.slow_consumer_disconnects,
        )
        registry.counter(
            "serve_protocol_errors_total",
            "Frames rejected with a typed CEPR5xx error",
            fn=lambda: stats.protocol_errors,
        )
        registry.counter(
            "serve_checkpoints_saved_total",
            "Checkpoints persisted (periodic and drain-time)",
            fn=lambda: stats.checkpoints_saved,
        )
        registry.gauge(
            "serve_subscriptions_active",
            "Live (connection, query) subscription pairs",
            fn=lambda: float(
                sum(feed.subscriber_count for feed in self._feeds.values())
            ),
        )
        registry.gauge(
            "serve_draining",
            "1 while the server is draining, else 0",
            fn=lambda: 1.0 if self._draining else 0.0,
        )
        registry.gauge(
            "serve_subscriber_queue_depth",
            "Deepest per-connection outbound queue right now",
            fn=lambda: float(self._max_outbox_depth()),
            agg="max",
        )
        registry.gauge(
            "serve_subscriber_queue_high_water",
            "Deepest any subscriber outbound queue has ever been",
            fn=lambda: float(stats.subscriber_queue_high_water),
            agg="max",
        )
        registry.histogram(
            "serve_ingest_seconds",
            "Wall time of each blocking submit batch",
            recorder=self._ingest_latency,
        )
        if self.sanitizer is not None:
            sanitizer = self.sanitizer
            registry.counter(
                "serve_sanitizer_trips_total",
                "Serving-layer sanitizer trips (loop-stall watchdog)",
                fn=lambda: sanitizer.total_trips,
            )
        return registry
