"""The CEPR wire protocol: versioned, length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length ``N`` followed by exactly
``N`` bytes of UTF-8 JSON encoding one object.  Every frame carries an
``"op"`` string; requests may carry a client-chosen ``"id"`` which the
matching ``ack``/``error`` reply echoes, so a client can interleave
requests with asynchronously delivered ``emission`` frames.

The full frame tables (ops, reply shapes, failure semantics) live in
``docs/SERVING.md``; this module is the single source of truth for the
constants and the codec.

Trace context propagation (all additive, so the version stays 1):
``hello`` and ``push``/``push_batch`` frames may carry an optional
``"trace"`` object — an opaque client-chosen context (request ids,
tenant tags).  The server merges the connection-level HELLO context with
the per-push context and stamps the result on every ingested event; the
``trace`` op (``{"op": "trace", "query": ..., "emission": index}``,
``shards == 1`` only) returns that emission's engine-side provenance
stitched to the remote contexts of the events that fed it — one causal
chain from client push to ranked emission.

Error frames are typed: ``{"op": "error", "code": "CEPR5xx", ...}``.
The ``CEPR5xx`` range extends the static analyzer's coded-diagnostic
convention (``CEPR4xx`` covers shardability) to the serving layer:

============  =====================================================
``CEPR500``   malformed frame (bad JSON, not an object, missing op)
``CEPR501``   frame exceeds the negotiated maximum size (fatal)
``CEPR502``   unknown op
``CEPR503``   bad handshake (missing HELLO or version mismatch)
``CEPR504``   unknown query name
``CEPR505``   query rejected (parse/analysis error; message has why)
``CEPR506``   invalid event document
``CEPR507``   invalid argument (bad kinds filter, bad field type)
``CEPR508``   server is draining; mutation refused
``CEPR509``   op unsupported in this server mode (e.g. REGISTER on
              a sharded fleet)
``CEPR510``   internal server error while handling the request
============  =====================================================

Only ``CEPR501`` (and a failed handshake) close the connection: the
length prefix keeps frame boundaries intact for every other error, so
the server answers with a typed error frame and keeps reading.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

#: Protocol version spoken by this build; HELLO must carry it verbatim.
PROTOCOL_VERSION = 1

#: Default cap on a single frame's JSON payload (bytes).
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

# -- error codes -------------------------------------------------------------

E_MALFORMED = "CEPR500"
E_FRAME_TOO_LARGE = "CEPR501"
E_UNKNOWN_OP = "CEPR502"
E_BAD_HELLO = "CEPR503"
E_UNKNOWN_QUERY = "CEPR504"
E_QUERY_REJECTED = "CEPR505"
E_INVALID_EVENT = "CEPR506"
E_INVALID_ARGUMENT = "CEPR507"
E_DRAINING = "CEPR508"
E_UNSUPPORTED = "CEPR509"
E_INTERNAL = "CEPR510"

#: Ops a client may send (the server additionally emits ``ack``, ``error``,
#: ``emission``, ``unsubscribed``, and ``bye``).
REQUEST_OPS = frozenset(
    {
        "hello",
        "ping",
        "push",
        "push_batch",
        "advance",
        "sync",
        "register",
        "unregister",
        "subscribe",
        "unsubscribe",
        "stats",
        "trace",
        "bye",
    }
)


class FrameError(Exception):
    """A frame that violates the protocol; ``code`` is a ``CEPR5xx``.

    ``fatal`` marks violations after which the byte stream cannot be
    trusted (oversized frames) — the connection must close.
    """

    def __init__(self, code: str, message: str, fatal: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.fatal = fatal


class ConnectionClosed(Exception):
    """The peer closed the connection (possibly mid-frame)."""


# -- encoding ----------------------------------------------------------------


def encode_frame(
    doc: dict[str, Any], max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Serialise one frame: length prefix + compact JSON payload."""
    payload = json.dumps(
        doc, separators=(",", ":"), ensure_ascii=False, allow_nan=False
    ).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise FrameError(
            E_FRAME_TOO_LARGE,
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit",
            fatal=True,
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Parse and validate one frame payload (must be an object with op)."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(E_MALFORMED, f"frame is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise FrameError(
            E_MALFORMED, f"frame must be a JSON object, got {type(doc).__name__}"
        )
    op = doc.get("op")
    if not isinstance(op, str) or not op:
        raise FrameError(E_MALFORMED, "frame is missing its 'op' string")
    return doc


def error_frame(
    code: str, message: str, reply_to: Any = None
) -> dict[str, Any]:
    """Build a typed error frame, echoing the request id when known."""
    doc: dict[str, Any] = {"op": "error", "code": code, "message": message}
    if reply_to is not None:
        doc["id"] = reply_to
    return doc


def ack_frame(request: dict[str, Any], **fields: Any) -> dict[str, Any]:
    """Build the ack for ``request``, echoing its op and id."""
    doc: dict[str, Any] = {"op": "ack", "of": request["op"]}
    if "id" in request:
        doc["id"] = request["id"]
    doc.update(fields)
    return doc


# -- asyncio reading (server side) -------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    payload_timeout: float | None = None,
) -> dict[str, Any]:
    """Read one frame from an asyncio stream.

    Waiting for a frame to *start* is unbounded (idle subscribers are
    legitimate); once the header arrives, the payload must follow within
    ``payload_timeout`` seconds — the slow-loris guard.  Raises
    :class:`ConnectionClosed` on EOF and :class:`FrameError` (fatal) on an
    oversized declared length.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("peer closed the connection") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameError(
            E_FRAME_TOO_LARGE,
            f"declared frame length {length} exceeds the "
            f"{max_frame_bytes}-byte limit",
            fatal=True,
        )
    try:
        payload = await asyncio.wait_for(
            reader.readexactly(length), timeout=payload_timeout
        )
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("peer closed the connection mid-frame") from exc
    except asyncio.TimeoutError as exc:
        raise FrameError(
            E_MALFORMED,
            f"frame payload did not arrive within {payload_timeout}s",
            fatal=True,
        ) from exc
    return decode_payload(payload)


# -- blocking reading (client side) ------------------------------------------


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed("server closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_blocking(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> dict[str, Any]:
    """Read one frame from a blocking socket (client side)."""
    (length,) = _HEADER.unpack(_recv_exactly(sock, HEADER_BYTES))
    if length > max_frame_bytes:
        raise FrameError(
            E_FRAME_TOO_LARGE,
            f"declared frame length {length} exceeds the "
            f"{max_frame_bytes}-byte limit",
            fatal=True,
        )
    return decode_payload(_recv_exactly(sock, length))
