"""Sharded partition-parallel execution.

``PARTITION BY`` is the semantic lever that licenses parallelism: events
only interact with runs of their own key, so distinct keys can be matched
by distinct engines as long as every event keeps its **global** sequence
number (count windows measure global arrival positions).
:class:`ShardedEngineRunner` exploits exactly that:

* the runner assigns global sequence numbers once, at the dispatch point,
  then hashes each event's partition key across ``N`` worker shards;
* each shard owns a private :class:`~repro.runtime.engine.CEPREngine`
  (constructed with a :class:`~repro.events.time.PreassignedSequencer`)
  driven on its own consumer thread behind a bounded queue — the same
  backpressure discipline as
  :class:`~repro.runtime.concurrent.ThreadedEngineRunner`;
* a deterministic **ordered-merge stage** recombines per-shard emissions
  into the exact single-engine output: per-epoch top-k lists are k-way
  merged (:func:`~repro.ranking.topk.merge_rankings`) under a tie-break
  key that provably reproduces the single-engine order, and pass-through
  match emissions are re-sequenced by the global sequence number of the
  event that triggered them.

Exactness and placement
-----------------------

Not every query can be sharded without changing its output.  At
:meth:`ShardedEngineRunner.start` each query is placed:

* **sharded** — partitioned queries with ``EMIT ON WINDOW CLOSE``
  (tumbling) or unranked pass-through emission: the merged output is
  *identical* to a single-engine run (the differential test suite asserts
  this match-for-match);
* **solo** — everything else (unpartitioned queries, sliding
  ``EMIT EVERY``/ranked ``EAGER`` scopes whose snapshots depend on the
  *global* event order, and — whenever any query has a ``YIELD`` clause —
  all queries, because derived events must cascade through one engine).
  Solo queries run on a single dedicated engine, which is trivially exact.

Equivalence is modulo bookkeeping: merged matches are re-stamped with
fresh per-query ``detection_index``/``revision`` values assigned in the
deterministic merge order, which coincides with single-engine detection
order (scores, bindings, rankings, and emission points are identical).

Barrier semantics
-----------------

``advance_time`` and ``flush`` are **barriers**: the runner drains every
shard queue, broadcasts the operation to all shards, and then runs the
merge stage.  Merged emissions are therefore released at barrier points
(live deployments already call ``advance_time`` on a heartbeat).  A
tumbling epoch is merged once no shard can still contribute to it —
immediately for time windows closed by a heartbeat, at the next barrier
after every shard moved past it for count windows, and at ``flush`` at the
latest.

Exactness assumes heartbeat timestamps never run *ahead* of later events'
timestamps (the normal live contract — a watermark followed by earlier
timestamps is a contradictory stream): a watermark that overtakes the
stream lets a single engine close an epoch, then re-open it for matches
arriving behind the watermark, an emission split the merge stage does not
reproduce.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import zlib
from collections import deque
from typing import Any, Callable, Iterable

from repro.engine.match import Match
from repro.engine.matcher import MatcherStats
from repro.engine.partitioner import Partitioner
from repro.engine.windows import EpochTracker
from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.events.time import LatenessBuffer, PreassignedSequencer, SequenceAssigner
from repro.language.analysis.shardability import (
    ShardabilityReport,
    certify_shardability,
)
from repro.language.ast_nodes import Query, WindowKind
from repro.language.errors import CEPRSemanticError
from repro.language.parser import parse_query
from repro.language.semantics import AnalyzedQuery, analyze
from repro.observability.cost import CostAccount
from repro.observability.log import get_logger
from repro.observability.pressure import PressureAssessor, PressureSample, merge_samples
from repro.observability.profiling import StageProfile
from repro.observability.registry import MetricsRegistry, merge_registries
from repro.ranking.emission import Emission, EmissionKind
from repro.ranking.score import Scorer
from repro.ranking.topk import merge_rankings
from repro.runtime._construction import warn_direct_construction
from repro.runtime.engine import CEPREngine, restore_lateness, snapshot_lateness
from repro.runtime.metrics import EngineMetrics, QueryMetrics, aggregate_query_metrics
from repro.runtime.query import RegisteredQuery
from repro.runtime.shedding import (
    ShedController,
    ShedStats,
    controller_to_dict,
    merge_shed_stats,
)
from repro.runtime.sinks import SinkLike, Subscription, close_sink, flush_sink
from repro.sanitize.core import release_affinity
from repro.sanitize.locks import register_lock_metrics, tracked_lock

_INF = float("inf")


def stable_shard(key: tuple[Any, ...], shards: int) -> int:
    """Deterministic shard assignment for a partition key.

    Uses CRC32 over the key's ``repr`` instead of :func:`hash` so the
    assignment is stable across processes (``hash`` of strings is salted
    per interpreter), which keeps per-shard statistics reproducible.
    """
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace")) % shards


# The shardability decision table lives in the static analyzer
# (language/analysis/shardability.py): certify_shardability() reports
# which property of a query — no PARTITION BY, trailing negation, sliding
# emission, global LIMIT, YIELD — forces solo execution.  The runner
# consumes the certificate at start() and logs the blockers whenever
# ``shards > 1`` degrades to a solo engine.
_log = get_logger(__name__)


def aggregate_matcher_stats(parts: Iterable[MatcherStats]) -> MatcherStats:
    """Sum matcher counters across shards (``peak_live_runs`` takes max)."""
    total = MatcherStats()
    for part in parts:
        for spec in dataclasses.fields(MatcherStats):
            current = getattr(total, spec.name)
            value = getattr(part, spec.name)
            if spec.name == "peak_live_runs":
                setattr(total, spec.name, max(current, value))
            else:
                setattr(total, spec.name, current + value)
    return total


def _encode_emission(emission: Emission) -> dict:
    """JSON-safe encoding of a shard-local emission (for checkpoints)."""
    from repro.engine.snapshot import encode_match

    return {
        "kind": emission.kind.value,
        "ranking": [encode_match(m) for m in emission.ranking],
        "at_seq": emission.at_seq,
        "at_ts": emission.at_ts,
        "epoch": emission.epoch,
        "revision": emission.revision,
        "entered": [encode_match(m) for m in emission.entered],
        "exited": [encode_match(m) for m in emission.exited],
    }


def _decode_emission(state: dict, scorer: Scorer) -> Emission:
    """Inverse of :func:`_encode_emission`, re-scoring every match."""
    from repro.engine.snapshot import decode_match

    def rescore(item: dict) -> Match:
        return scorer.score(decode_match(item))

    return Emission(
        kind=EmissionKind(state["kind"]),
        ranking=[rescore(item) for item in state["ranking"]],
        at_seq=int(state["at_seq"]),
        at_ts=float(state["at_ts"]),
        epoch=state["epoch"],
        revision=int(state["revision"]),
        entered=[rescore(item) for item in state["entered"]],
        exited=[rescore(item) for item in state["exited"]],
    )


class _MergedResults:
    """Collector-shaped view over a query's merged emissions."""

    def __init__(self, emissions: list[Emission]) -> None:
        self.emissions = emissions

    def __len__(self) -> int:
        return len(self.emissions)

    def matches(self) -> list[Match]:
        return [m for e in self.emissions for m in e.ranking]

    def final_ranking(self) -> list[Match]:
        return list(self.emissions[-1].ranking) if self.emissions else []


class _FleetMatcherView:
    """Matcher-shaped facade aggregating the per-shard matchers."""

    def __init__(self, handles: list[RegisteredQuery]) -> None:
        self._handles = handles

    @property
    def stats(self) -> MatcherStats:
        return aggregate_matcher_stats(h.matcher.stats for h in self._handles)

    @property
    def live_run_count(self) -> int:
        return sum(h.matcher.live_run_count for h in self._handles)

    @property
    def pending_count(self) -> int:
        return sum(h.matcher.pending_count for h in self._handles)


class ShardedQuery:
    """Fleet-wide handle for one query registered on a sharded runner.

    Shaped like :class:`~repro.runtime.query.RegisteredQuery` where it
    matters (``results``/``matches``/``final_ranking``, ``metrics``,
    ``matcher`` stats, ``analyzed``), so the monitor and existing tooling
    work unchanged, but backed by the merge stage: ``results()`` returns
    the deterministically merged emission stream.
    """

    def __init__(self, name: str, analyzed: AnalyzedQuery) -> None:
        self.name = name
        self.analyzed = analyzed
        #: The analyzer's certificate: why this query can(not) be sharded.
        self.shardability: ShardabilityReport = certify_shardability(analyzed)
        #: True when ``shards > 1`` was requested but this query ran solo.
        self.solo_fallback = False
        #: "sharded-tumbling" | "sharded-passthrough" | "solo"; set at start.
        self.mode: str | None = None
        self.handles: list[RegisteredQuery] = []
        #: Subscriptions/sinks fed the *merged* emission stream (delivered
        #: on the barrier-calling thread, at merge release points).
        self.sinks: list[Any] = []
        self._cursors: list[int] = []
        self._merged: list[Emission] = []
        self.collector = _MergedResults(self._merged)
        self._revision = 0
        self._detections = 0
        # Global-stream bookkeeping maintained by the runner at dispatch.
        self.last_routed_seq = -1
        self.last_routed_ts = 0.0
        self.last_ts = 0.0
        self._tracker: EpochTracker | None = None
        self._runner_epoch: int | None = None
        #: close records: (first epoch strictly after the closed ones, seq, ts)
        self._advances: deque[tuple[int, int, float]] = deque()
        #: epoch -> list of (shard_index, per-shard WINDOW_CLOSE emission)
        self._pending_epochs: dict[int, list[tuple[int, Emission]]] = {}

    # -- wiring (runner internals) ------------------------------------------------

    def _attach(self, mode: str, handles: list[RegisteredQuery]) -> None:
        self.mode = mode
        self.handles = handles
        self._cursors = [0] * len(handles)
        if mode == "sharded-tumbling":
            assert self.analyzed.window is not None
            self._tracker = EpochTracker(self.analyzed.window)

    def _observe_routed(self, event: Event) -> None:
        """Track the global stream point (called by the runner, pre-dispatch)."""
        self.last_routed_seq = event.seq
        self.last_routed_ts = event.timestamp
        if event.timestamp > self.last_ts:
            self.last_ts = event.timestamp
        if self._tracker is None:
            return
        epoch = self._tracker.epoch_of(event)
        if self._runner_epoch is None:
            self._runner_epoch = epoch
        elif epoch > self._runner_epoch:
            self._advances.append((epoch, event.seq, event.timestamp))
            self._runner_epoch = epoch

    def _observe_advance(self, timestamp: float) -> None:
        """Track a heartbeat barrier (closes time-window epochs globally)."""
        if timestamp > self.last_ts:
            self.last_ts = timestamp
        if (
            self._tracker is None
            or self.analyzed.window is None
            or self.analyzed.window.kind is not WindowKind.TIME
        ):
            return
        epoch = self._tracker.epoch_of_point(self.last_routed_seq, timestamp)
        if self._runner_epoch is None:
            self._runner_epoch = epoch
        elif epoch > self._runner_epoch:
            self._advances.append((epoch, self.last_routed_seq, timestamp))
            self._runner_epoch = epoch

    # -- checkpointing -------------------------------------------------------------

    def _snapshot_merge_state(self) -> dict:
        """Merge-stage state: pending epochs, counters, un-merged tails.

        The merged emission *history* is output, not state — it never
        influences future merges — and is not checkpointed (see
        docs/RECOVERY.md).  What must travel is everything that feeds the
        next merge: shard-collector emissions not yet drained, epochs
        drained but not yet closable, and the re-stamping counters.
        """
        tails = []
        for shard, handle in enumerate(self.handles):
            assert handle.collector is not None
            emissions = handle.collector.emissions
            tails.append(
                [
                    _encode_emission(emission)
                    for emission in emissions[self._cursors[shard] :]
                ]
            )
        return {
            "mode": self.mode,
            "revision": self._revision,
            "detections": self._detections,
            "last_routed_seq": self.last_routed_seq,
            "last_routed_ts": self.last_routed_ts,
            "last_ts": self.last_ts,
            "runner_epoch": self._runner_epoch,
            "advances": [list(advance) for advance in self._advances],
            "pending_epochs": {
                str(epoch): [
                    [shard, _encode_emission(emission)]
                    for shard, emission in parts
                ]
                for epoch, parts in self._pending_epochs.items()
            },
            "shard_tails": tails,
        }

    def _restore_merge_state(self, state: dict) -> None:
        from repro.engine.snapshot import SnapshotFormatError

        if state["mode"] != self.mode:
            raise SnapshotFormatError(
                f"query {self.name!r}: snapshot placement {state['mode']!r} "
                f"does not match current placement {self.mode!r}"
            )
        scorer = self.handles[0].scorer
        self._revision = int(state["revision"])
        self._detections = int(state["detections"])
        self.last_routed_seq = int(state["last_routed_seq"])
        self.last_routed_ts = float(state["last_routed_ts"])
        self.last_ts = float(state["last_ts"])
        self._runner_epoch = state["runner_epoch"]
        self._advances = deque(
            (int(epoch), int(seq), float(ts))
            for epoch, seq, ts in state["advances"]
        )
        self._pending_epochs = {
            int(epoch): [
                (int(shard), _decode_emission(item, scorer))
                for shard, item in parts
            ]
            for epoch, parts in state["pending_epochs"].items()
        }
        # Shard engines were restored with empty collectors; re-seed them
        # with the un-merged tails and point the cursors at their start.
        self._cursors = [0] * len(self.handles)
        for shard, tail in enumerate(state["shard_tails"]):
            collector = self.handles[shard].collector
            assert collector is not None
            collector.emissions.clear()
            for item in tail:
                collector.emissions.append(_decode_emission(item, scorer))

    # -- merge stage ---------------------------------------------------------------

    def _drain_shards(self) -> list[tuple[int, int, Emission]]:
        """New (shard, index, emission) triples since the last merge."""
        drained: list[tuple[int, int, Emission]] = []
        for shard, handle in enumerate(self.handles):
            assert handle.collector is not None
            emissions = handle.collector.emissions
            start = self._cursors[shard]
            for index in range(start, len(emissions)):
                drained.append((shard, index, emissions[index]))
            self._cursors[shard] = len(emissions)
        return drained

    def _merge_ready(
        self, point: tuple[int, float] | None = None, final: bool = False
    ) -> list[Emission]:
        """Run the merge stage; returns newly released merged emissions.

        ``point`` is the global ``(seq, ts)`` emission point for
        barrier-produced output (heartbeat confirmations, flush releases);
        ``final`` marks the flush barrier, after which every held epoch is
        closable.
        """
        if self.mode == "solo":
            released = [emission for _, _, emission in self._drain_shards()]
        elif self.mode == "sharded-passthrough":
            released = self._merge_passthrough(point)
        else:
            released = self._merge_tumbling(point, final)
        self._merged.extend(released)
        if released and self.sinks:
            for emission in released:
                for sink in list(self.sinks):
                    sink.accept(emission)
        return released

    def _merge_passthrough(self, point: tuple[int, float] | None) -> list[Emission]:
        drained = self._drain_shards()
        if not drained:
            return []
        if point is None:
            # In-stream emissions carry the triggering event's global seq:
            # ordering by it reproduces the single-engine emission order
            # (ties share one shard, where collector order is detection
            # order).
            drained.sort(key=lambda t: (t[2].at_seq, t[0], t[1]))
        else:
            # Barrier-produced confirmations: per-shard at_seq is the
            # shard-local stream tail, so re-stamp with the global point
            # and order by the detection point of the match itself.
            drained.sort(key=lambda t: (t[2].ranking[0].last_seq, t[0], t[1]))
        released = []
        for _, _, emission in drained:
            at_seq, at_ts = (
                (emission.at_seq, emission.at_ts) if point is None else point
            )
            for match in emission.ranking:
                match.detection_index = self._detections
                self._detections += 1
            self._revision += 1
            released.append(
                Emission(
                    kind=emission.kind,
                    ranking=list(emission.ranking),
                    at_seq=at_seq,
                    at_ts=at_ts,
                    revision=self._revision,
                )
            )
        return released

    def _merge_tumbling(
        self, point: tuple[int, float] | None, final: bool
    ) -> list[Emission]:
        for shard, _, emission in self._drain_shards():
            assert emission.epoch is not None
            self._pending_epochs.setdefault(emission.epoch, []).append(
                (shard, emission)
            )
        if not self._pending_epochs:
            return []
        # An epoch is mergeable once no shard still buffers it (or anything
        # before it); epochs must release in ascending order.
        if final:
            min_open = _INF
        else:
            min_open = min(
                (
                    min(handle.ranker.open_epochs(), default=_INF)
                    for handle in self.handles
                ),
                default=_INF,
            )
        released: list[Emission] = []
        for epoch in sorted(self._pending_epochs):
            if epoch >= min_open:
                break
            close = self._close_point(epoch, point, final)
            if close is None:
                break
            released.append(
                self._merge_epoch(epoch, self._pending_epochs.pop(epoch), close)
            )
        return released

    def _close_point(
        self, epoch: int, point: tuple[int, float] | None, final: bool
    ) -> tuple[int, float] | None:
        """Global ``(seq, ts)`` at which ``epoch`` closed, if known yet."""
        advances = self._advances
        while advances and advances[0][0] <= epoch:
            advances.popleft()  # useless for this and every later epoch
        if advances:
            return (advances[0][1], advances[0][2])
        if final or point is not None:
            return point if point is not None else None
        return None

    def _merge_epoch(
        self, epoch: int, parts: list[tuple[int, Emission]], close: tuple[int, float]
    ) -> Emission:
        # Re-stamp detection indices in global detection order: within a
        # shard, collector/ranking order restricted to equal scores is
        # detection order, and across shards the completing event's global
        # seq orders detections (one event is matched by exactly one
        # shard).  After re-stamping, each per-shard ranking is still
        # sorted under Match.sort_key, so a k-way merge yields the global
        # top-k — identical to the single-engine epoch ranking.
        union = [
            (match.last_seq, shard, match.detection_index, match)
            for shard, emission in parts
            for match in emission.ranking
        ]
        union.sort(key=lambda t: t[:3])
        for _, _, _, match in union:
            match.detection_index = self._detections
            self._detections += 1
        rankings = [list(emission.ranking) for _, emission in parts]
        merged = merge_rankings(rankings, k=self.analyzed.limit)
        self._revision += 1
        return Emission(
            kind=EmissionKind.WINDOW_CLOSE,
            ranking=merged,
            at_seq=close[0],
            at_ts=close[1],
            epoch=epoch,
            revision=self._revision,
        )

    # -- subscriptions -------------------------------------------------------------

    def subscribe(
        self,
        target: SinkLike,
        kinds: EmissionKind | str | Iterable[EmissionKind | str] | None = None,
    ) -> Subscription:
        """Subscribe to the merged emission stream of this query.

        Same contract as ``RegisteredQuery.subscribe``, but delivery
        happens at merge release points (barriers and mergeable in-stream
        epochs), on the barrier-calling thread.  Use the runner's
        :meth:`~ShardedEngineRunner.subscribe` when the runner is live —
        it takes the dispatch lock around the sink-list mutation.
        """
        subscription = Subscription(self, target, kinds=kinds)
        self.sinks.append(subscription)
        return subscription

    def remove_sink(self, sink: Any) -> bool:
        """Detach a sink/subscription; returns ``False`` when absent."""
        try:
            self.sinks.remove(sink)
        except ValueError:
            return False
        if isinstance(sink, Subscription):
            sink.active = False
        return True

    def flush_sinks(self) -> None:
        for sink in self.sinks:
            flush_sink(sink)

    def close_sinks(self) -> None:
        for sink in self.sinks:
            close_sink(sink)

    # -- results -------------------------------------------------------------------

    def results(self) -> list[Emission]:
        """All merged emissions released so far (complete after ``flush``)."""
        return list(self._merged)

    def matches(self) -> list[Match]:
        return [m for e in self._merged for m in e.ranking]

    def final_ranking(self) -> list[Match]:
        return list(self._merged[-1].ranking) if self._merged else []

    # -- introspection ---------------------------------------------------------------

    @property
    def has_yield(self) -> bool:
        return self.analyzed.yield_spec is not None

    @property
    def relevant_types(self) -> frozenset[str]:
        return self.analyzed.relevant_types

    @property
    def shards(self) -> int:
        return len(self.handles)

    @property
    def metrics(self) -> QueryMetrics:
        """Fleet-wide metrics: per-shard counters summed, latency pooled."""
        total = aggregate_query_metrics([h.metrics for h in self.handles])
        if self.mode != "solo":
            # Per-shard counters tally shard-local releases (each shard
            # closes its own copy of every epoch); what the deployment
            # observed is the merged stream.
            total.emissions = len(self._merged)
            total.revisions = self._revision
        return total

    @property
    def matcher(self) -> _FleetMatcherView:
        return _FleetMatcherView(self.handles)

    @property
    def profile(self) -> StageProfile | None:
        """Fleet-wide stage profile (``None`` when profiling is off)."""
        parts = [h.profile for h in self.handles if h.profile is not None]
        if not parts:
            return None
        total = StageProfile()
        for part in parts:
            total.absorb(part)
        return total

    def cost_account(self) -> CostAccount:
        """Fleet-wide cost account (per-shard accounts merged)."""
        return CostAccount.merge(
            CostAccount.from_query(handle) for handle in self.handles
        )

    def explain(self) -> str:
        return self.handles[0].explain()


class _Worker:
    """One shard: a private engine drained by a consumer thread."""

    def __init__(self, engine: CEPREngine, max_queue: int, batch_size: int) -> None:
        self.engine = engine
        self.queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self.batch_size = batch_size
        self.thread: threading.Thread | None = None
        self.failure: BaseException | None = None
        self.events_processed = 0
        #: deepest this shard's ingest queue has been (post-enqueue depth).
        self.queue_high_water = 0

    def start(self) -> None:
        # Sanitizer handoff: queries were registered into this engine on
        # the coordinating thread; the consumer thread owns it from here.
        release_affinity(self.engine)
        self.thread = threading.Thread(target=self._consume, daemon=True)
        self.thread.start()

    def put_event(self, event: Event, timeout: float | None = None) -> None:
        self.queue.put(("event", event), timeout=timeout)
        depth = self.queue.qsize()
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def put_op(self, op: tuple) -> None:
        self.queue.put(op)

    def _sync_engine(self) -> None:
        """Barrier-sync hook, run on the consumer thread at ``sync`` ops.

        In-process shards have nothing to do — the drained queue IS the
        barrier.  The process-backed runner overrides this to round-trip
        the barrier to the worker process so the coordinator reads fresh
        mirrored state (see :mod:`repro.runtime.process`).
        """

    def close(self, force: bool = False) -> None:
        """Teardown hook, called after the consumer thread has joined.

        In-process shards own no external resources.  The process-backed
        runner overrides this to reap (or with ``force`` terminate) the
        worker process.
        """

    def _consume(self) -> None:
        pending_op: tuple | None = None
        while True:
            item = pending_op if pending_op is not None else self.queue.get()
            pending_op = None
            kind = item[0]
            if kind == "event":
                # Batched hot path: greedily drain queued events so the
                # engine amortises per-call overhead via push_batch.
                batch = [item[1]]
                while len(batch) < self.batch_size:
                    try:
                        nxt = self.queue.get_nowait()
                    except queue.Empty:
                        break
                    if nxt[0] == "event":
                        batch.append(nxt[1])
                    else:
                        pending_op = nxt
                        break
                if self.failure is None:
                    try:
                        self.engine.push_batch(batch)
                        self.events_processed += len(batch)
                    except BaseException as exc:  # surfaced via .failure
                        self.failure = exc
                continue
            if kind == "stop":
                # Discard anything queued behind the sentinel so no
                # producer is left wedged in a full-queue put.
                while True:
                    try:
                        self.queue.get_nowait()
                    except queue.Empty:
                        break
                item[1].set()
                return
            # Barrier ops always acknowledge, even after a failure, so the
            # runner can never deadlock waiting on a dead shard.
            if self.failure is None:
                try:
                    if kind == "sync":
                        self._sync_engine()
                    elif kind == "advance":
                        self.engine.advance_time(item[1])
                    else:  # "flush"
                        self.engine.flush()
                except BaseException as exc:
                    self.failure = exc
            item[-1].set()


class _Group:
    """One fleet of shards serving queries that share a partition spec."""

    def __init__(
        self, attributes: tuple[str, ...], workers: list[_Worker]
    ) -> None:
        self.partitioner = Partitioner(attributes)
        self.workers = workers
        self.relevant_types: frozenset[str] = frozenset()


class ShardedEngineRunner:
    """Partition-parallel engine fleet with a deterministic merge stage.

    Lifecycle mirrors :class:`~repro.runtime.concurrent.ThreadedEngineRunner`
    — ``register_query`` (before ``start``), ``start``, ``submit`` from any
    thread, ``advance_time``/``flush`` barriers, ``stop`` — but results per
    query come from :class:`ShardedQuery` handles whose merged output is
    identical to a single-engine run (see the module docstring for the
    exactness contract).

    Parameters mirror :class:`~repro.runtime.engine.CEPREngine` where they
    share names; ``shards`` is the worker count per partition group,
    ``max_queue`` bounds each shard's ingest queue (``submit`` blocks when
    the target shard is saturated — backpressure, not unbounded memory),
    and ``batch_size`` caps how many queued events a shard drains into one
    ``push_batch`` call.  ``on_emission`` receives every *merged* emission,
    on the barrier-calling thread.
    """

    def __init__(
        self,
        shards: int = 4,
        registry: SchemaRegistry | None = None,
        strict_schema: bool = False,
        enable_pruning: bool = True,
        strict_time: bool = False,
        lenient_errors: bool = False,
        max_lateness: float | None = None,
        max_queue: int = 10_000,
        batch_size: int = 256,
        on_emission: Callable[[Emission], None] | None = None,
        sanitize: bool | None = None,
        shed_policy: str = "off",
        latency_target: float | None = None,
        shed_controller: ShedController | None = None,
        compiled: bool = True,
    ) -> None:
        warn_direct_construction(type(self).__name__)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.compiled = compiled
        self.registry = registry
        self.strict_schema = strict_schema
        self.enable_pruning = enable_pruning
        self.strict_time = strict_time
        self.lenient_errors = lenient_errors
        self.max_lateness = max_lateness
        self.max_queue = max_queue
        self.batch_size = batch_size
        self.on_emission = on_emission
        #: forwarded to every shard engine (None follows CEPR_SANITIZE).
        self.sanitize = sanitize

        self._views: dict[str, ShardedQuery] = {}
        self._asts: dict[str, Query] = {}
        self._auto_name_counter = 0
        self._started = False
        self._stopped = False
        self._flushed = False
        self._lock = tracked_lock("sharded.dispatch")
        self._sequencer = SequenceAssigner(strict=strict_time)
        self._lateness = (
            LatenessBuffer(max_lateness) if max_lateness is not None else None
        )
        self.metrics = EngineMetrics()
        self.events_submitted = 0
        #: event-time watermark of the stream accepted at dispatch.
        self.last_submitted_ts: float | None = None
        self.pressure_assessor = PressureAssessor()
        #: optional ``() -> (depth, capacity)`` hook the serving layer
        #: installs so default pressure readings include its fullest
        #: subscriber outbound queue.
        self.subscriber_pressure_provider: (
            Callable[[], tuple[int, int]] | None
        ) = None

        if shed_controller is None:
            shed_controller = ShedController(
                policy=shed_policy,
                **(
                    {}
                    if latency_target is None
                    else {"latency_target": latency_target}
                ),
            )
        #: dispatch-level shedding state machine: owns the overload
        #: assessment and (in adaptive mode) the pre-dispatch sampler.
        self.shed_controller = shed_controller
        #: per-worker exact-mode controllers (thread-local counters); the
        #: dispatch tick mirrors the engaged flag onto them.
        self._worker_controllers: list[ShedController] = []
        #: dispatch events between shedding control ticks.
        self._shed_tick_interval = 64
        self._shed_dispatched = 0

        self._workers: list[_Worker] = []
        self._groups: list[_Group] = []
        self._solo_worker: _Worker | None = None
        self._solo_types: frozenset[str] = frozenset()
        #: event type -> sharded views whose global-stream point it advances
        self._type_watchers: dict[str, list[ShardedQuery]] = {}
        #: True when the runner stamps global seqs (any sharded group exists)
        self._preassign = False

    # -- registration -----------------------------------------------------------------

    def register_query(
        self, query: str | Query, name: str | None = None
    ) -> ShardedQuery:
        """Parse, analyse, and stage one query (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot register queries after start()")
        ast = parse_query(query) if isinstance(query, str) else query
        analyzed = analyze(ast, self.registry)
        resolved = name or ast.name or self._next_auto_name()
        if resolved in self._views:
            raise CEPRSemanticError(
                f"a query named {resolved!r} is already registered"
            )
        view = ShardedQuery(resolved, analyzed)
        self._views[resolved] = view
        self._asts[resolved] = ast
        return view

    def _next_auto_name(self) -> str:
        self._auto_name_counter += 1
        candidate = f"q{self._auto_name_counter}"
        while candidate in self._views:
            self._auto_name_counter += 1
            candidate = f"q{self._auto_name_counter}"
        return candidate

    # -- lifecycle ---------------------------------------------------------------------

    def _new_engine(self, preassigned: bool) -> CEPREngine:
        return CEPREngine(
            registry=self.registry,
            strict_schema=self.strict_schema,
            enable_pruning=self.enable_pruning,
            strict_time=False if preassigned else self.strict_time,
            lenient_errors=self.lenient_errors,
            max_lateness=None if preassigned else self.max_lateness,
            sequencer=PreassignedSequencer() if preassigned else None,
            sanitize=self.sanitize,
            compiled=self.compiled,
        )

    def _make_worker(self, engine: CEPREngine) -> _Worker:
        """Build one shard worker; the process runner overrides this."""
        return _Worker(engine, self.max_queue, self.batch_size)

    def start(self) -> "ShardedEngineRunner":
        if self._started:
            raise RuntimeError("runner already started")
        self._started = True

        views = list(self._views.values())
        # YIELD cascades derive events that must re-enter one global
        # engine (and consume global sequence numbers), so any YIELD pins
        # the whole deployment to the solo engine.
        any_yield = any(view.has_yield for view in views)
        solo: list[ShardedQuery] = []
        grouped: dict[tuple[str, ...], list[ShardedQuery]] = {}
        for view in views:
            report = view.shardability
            if self.shards == 1 or any_yield or not report.shardable:
                solo.append(view)
                # shards == 1 is not a downgrade — solo IS the request.
                if self.shards > 1:
                    view.solo_fallback = True
                    if not report.shardable:
                        reasons = "; ".join(
                            f"{b.code}: {b.message}" for b in report.blockers
                        )
                    else:
                        reasons = (
                            "CEPR405: another query's YIELD pins the whole "
                            "deployment to the solo engine"
                        )
                    _log.warning(
                        "query %r falls back to a solo engine despite "
                        "--shards %d (%s)",
                        view.name,
                        self.shards,
                        reasons,
                    )
            else:
                grouped.setdefault(view.analyzed.partition_by, []).append(view)
        self._preassign = bool(grouped)

        if solo:
            engine = self._new_engine(preassigned=self._preassign)
            worker = self._make_worker(engine)
            self._solo_worker = worker
            self._workers.append(worker)
            types: set[str] = set()
            for view in solo:
                handle = engine.register_query(self._asts[view.name], name=view.name)
                view._attach("solo", [handle])
                types |= view.relevant_types
            self._solo_types = frozenset(types)

        for attributes, members in grouped.items():
            workers = [
                self._make_worker(self._new_engine(preassigned=True))
                for _ in range(self.shards)
            ]
            group = _Group(attributes, workers)
            types = set()
            for view in members:
                handles = [
                    worker.engine.register_query(
                        self._asts[view.name], name=view.name
                    )
                    for worker in workers
                ]
                view._attach(view.shardability.mode, handles)
                types |= view.relevant_types
                for event_type in view.relevant_types:
                    self._type_watchers.setdefault(event_type, []).append(view)
            group.relevant_types = frozenset(types)
            self._groups.append(group)
            self._workers.extend(workers)

        if self.shed_controller.policy == "exact":
            # Exact elides run inside each shard engine's dispatch loop on
            # its own consumer thread; every worker gets a private
            # controller (thread-local counters — merged for reporting)
            # whose engaged flag the dispatch-level control tick mirrors.
            for worker in self._workers:
                controller = ShedController(
                    policy="exact",
                    latency_target=self.shed_controller.latency_target,
                    force=self.shed_controller.force,
                )
                worker.engine.shed_controller = controller
                controller.invariant_checker = getattr(
                    worker.engine, "_invariants", None
                )
                self._worker_controllers.append(controller)

        for worker in self._workers:
            worker.start()
        return self

    def __enter__(self) -> "ShardedEngineRunner":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self, timeout: float | None = 30.0) -> None:
        """Flush (if needed), stop every shard, and join the threads."""
        if not self._started or self._stopped:
            return
        try:
            if not self._flushed:
                self.flush()
        finally:
            self._stopped = True
            acks = []
            for worker in self._workers:
                ack = threading.Event()
                worker.put_op(("stop", ack))
                acks.append(ack)
            for worker in self._workers:
                assert worker.thread is not None
                worker.thread.join(timeout=timeout)
                if worker.thread.is_alive():
                    raise TimeoutError("shard thread did not drain in time")
            for worker in self._workers:
                worker.close()
        self._check_failures()
        for view in self._views.values():
            view.close_sinks()

    def close(self) -> None:
        """Terminal teardown: alias for :meth:`stop` (which closes sinks)."""
        self.stop()

    def kill(self, timeout: float | None = 5.0) -> None:
        """Stop every shard **without flushing** (crash simulation).

        The fault-injection harness uses this to model a process dying
        mid-stream: no flush barrier, no final merge, buffered state
        simply vanishes.  Worker threads are joined so repeated
        kill/restore cycles in a test session don't leak threads.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        for worker in self._workers:
            worker.put_op(("stop", threading.Event()))
        for worker in self._workers:
            assert worker.thread is not None
            worker.thread.join(timeout=timeout)
        for worker in self._workers:
            worker.close(force=True)

    # -- checkpointing ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Coordinated JSON-safe snapshot of the whole fleet.

        Takes a barrier: drains every shard queue, then captures the
        dispatch state (sequencer, lateness buffer), every shard engine's
        snapshot (in the deterministic worker order fixed by
        :meth:`start`), and each query's merge-stage state.  Consistency
        holds because the runner's lock blocks submits for the duration
        and the sync barrier empties all queues first.
        """
        if not self._started:
            raise RuntimeError("runner not started")
        if self._stopped:
            raise RuntimeError("runner is stopped")
        with self._lock:
            self._sync_all()
            self._check_failures()
            return {
                "shards": self.shards,
                "sequencer": self._sequencer.snapshot(),
                "lateness": (
                    None
                    if self._lateness is None
                    else snapshot_lateness(self._lateness)
                ),
                "events_submitted": self.events_submitted,
                "events_pushed": self.metrics.events_pushed,
                "engines": [
                    self._engine_snapshot(worker) for worker in self._workers
                ],
                "views": {
                    name: view._snapshot_merge_state()
                    for name, view in self._views.items()
                },
            }

    @staticmethod
    def _engine_snapshot(worker: _Worker) -> dict:
        """Snapshot one idle shard engine from the barrier thread.

        The sync barrier guarantees the consumer thread is parked, which
        makes this a synchronized handoff: affinity is released on both
        sides so neither the barrier thread's access (the sanitized
        snapshot self-check mutates state via a round-trip restore) nor
        the consumer's next batch reads as a cross-thread race.
        """
        release_affinity(worker.engine)
        try:
            return worker.engine.snapshot()
        finally:
            release_affinity(worker.engine)

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this freshly started runner.

        The runner must be configured identically to the one that took
        the snapshot — same ``shards``, same ``max_lateness`` setting, and
        the same queries registered under the same names — so its worker
        list lines up positionally with the snapshot's engine list.
        """
        from repro.engine.snapshot import SnapshotFormatError

        if not self._started:
            raise RuntimeError("runner not started (call start() first)")
        if self._stopped or self._flushed:
            raise RuntimeError("runner is stopped")
        if int(state["shards"]) != self.shards:
            raise SnapshotFormatError(
                f"shard count mismatch: snapshot has {state['shards']}, "
                f"runner has {self.shards}"
            )
        missing = sorted(set(state["views"]) - set(self._views))
        extra = sorted(set(self._views) - set(state["views"]))
        if missing or extra:
            raise SnapshotFormatError(
                f"query set mismatch: snapshot has {sorted(state['views'])}, "
                f"runner has {sorted(self._views)}"
            )
        if (state["lateness"] is None) != (self._lateness is None):
            raise SnapshotFormatError(
                "lateness-buffer configuration mismatch between snapshot "
                "and runner (max_lateness must match)"
            )
        engines = state["engines"]
        if len(engines) != len(self._workers):
            raise SnapshotFormatError(
                f"worker count mismatch: snapshot has {len(engines)} "
                f"engines, runner has {len(self._workers)} workers"
            )
        with self._lock:
            # Workers are idle (nothing submitted yet on a fresh runner;
            # the sync barrier guarantees it regardless), so restoring
            # their engines from the barrier thread is race-free.
            self._sync_all()
            self._check_failures()
            self._sequencer.restore(state["sequencer"])
            if state["lateness"] is not None:
                assert self._lateness is not None
                restore_lateness(self._lateness, state["lateness"])
            self.events_submitted = int(state["events_submitted"])
            self.metrics.events_pushed = int(state["events_pushed"])
            for worker, engine_state in zip(self._workers, engines):
                # Same synchronized-handoff discipline as _engine_snapshot.
                release_affinity(worker.engine)
                worker.engine.restore(engine_state)
                release_affinity(worker.engine)
            for name, view_state in state["views"].items():
                self._views[name]._restore_merge_state(view_state)

    # -- producing --------------------------------------------------------------------

    def submit(self, event: Event, timeout: float | None = None) -> None:
        """Ingest one event (blocks when the target shard's queue is full)."""
        if not self._started:
            raise RuntimeError("runner not started")
        if self._stopped or self._flushed:
            raise RuntimeError("runner is stopped")
        self._check_failures()
        if self.registry is not None:
            self.registry.validate(event, strict=self.strict_schema)
        with self._lock:
            if self._lateness is not None:
                for released in self._lateness.push(event):
                    self._ingest(released, timeout)
            else:
                self._ingest(event, timeout)
            self.events_submitted += 1

    def submit_all(self, events: Iterable[Event]) -> int:
        count = 0
        for event in events:
            self.submit(event)
            count += 1
        return count

    def _ingest(self, event: Event, timeout: float | None = None) -> None:
        if self._preassign:
            self._sequencer.assign(event)
        if (
            self.last_submitted_ts is None
            or event.timestamp > self.last_submitted_ts
        ):
            self.last_submitted_ts = event.timestamp
        controller = self.shed_controller
        if controller.policy != "off":
            if self._shed_dispatched % self._shed_tick_interval == 0:
                self._shed_control_tick()
            self._shed_dispatched += 1
            # Adaptive drops happen before dispatch bookkeeping: a dropped
            # event never reaches a shard, never advances the merge
            # trackers, and does not count as pushed.  (Exact-mode elides
            # happen inside the shard engines instead — every event still
            # dispatches, keeping sequence numbering byte-identical.)
            if controller.adaptive_active and not controller.admit(
                event,
                self._shed_probes(event),
                seq_hint=None if self._preassign else self.metrics.events_pushed,
            ):
                return
        self.metrics.on_push(event.timestamp)
        event_type = event.event_type
        for view in self._type_watchers.get(event_type, ()):
            view._observe_routed(event)
        if self._solo_worker is not None and (
            not self._preassign or event_type in self._solo_types
        ):
            self._solo_worker.put_event(event, timeout)
        for group in self._groups:
            if event_type not in group.relevant_types:
                continue
            key = group.partitioner.key_of(event)
            # Key-less events cannot join any run; shard 0 still receives
            # them so the skip is counted once, like a single engine would.
            shard = 0 if key is None else stable_shard(key, len(group.workers))
            group.workers[shard].put_event(event, timeout)

    def _shed_control_tick(self) -> None:
        """Dispatch-level overload assessment, mirrored onto the workers.

        Runs under the dispatch lock every ``_shed_tick_interval`` events:
        folds a fleet pressure sample into the controller's private
        assessor and copies the resulting engaged flag onto every
        per-worker exact controller (a plain attribute write — worker
        threads only read it).
        """
        controller = self.shed_controller
        controller.control(self.pressure_sample(), self.ingest_lag_seconds)
        for worker_controller in self._worker_controllers:
            worker_controller.engaged = controller.engaged

    def _shed_probes(self, event: Event) -> list[RegisteredQuery]:
        """Query handles ``event`` would reach (adaptive-mode probing).

        The handles live on worker engines owned by consumer threads, so
        the probes race those threads by construction;
        :meth:`~repro.runtime.shedding.ShedController.admit` demotes any
        probe failure to an uncertified verdict.
        """
        probes: list[RegisteredQuery] = []
        event_type = event.event_type
        if self._solo_worker is not None and (
            not self._preassign or event_type in self._solo_types
        ):
            probes.extend(self._solo_worker.engine.queries())
        for group in self._groups:
            if event_type not in group.relevant_types:
                continue
            key = group.partitioner.key_of(event)
            shard = 0 if key is None else stable_shard(key, len(group.workers))
            probes.extend(group.workers[shard].engine.queries())
        return probes

    def shed_stats(self) -> ShedStats:
        """Fleet-wide shedding counters (dispatch + worker controllers)."""
        return merge_shed_stats(
            [self.shed_controller.stats]
            + [controller.stats for controller in self._worker_controllers]
        )

    def shed_stats_dict(self) -> dict | None:
        """JSON-safe shedding snapshot for STATS frames (None when off)."""
        return controller_to_dict(
            self.shed_controller,
            [controller.stats for controller in self._worker_controllers],
        )

    @property
    def backlog(self) -> int:
        """Events queued across all shards, not yet processed (approximate)."""
        return sum(worker.queue.qsize() for worker in self._workers)

    @property
    def events_pushed(self) -> int:
        return self.metrics.events_pushed

    @property
    def effective_shards(self) -> int:
        """Worker threads actually running partitioned fleets (1 if none)."""
        return self.shards if self._groups else 1

    def _check_failures(self) -> None:
        for worker in self._workers:
            if worker.failure is not None:
                raise RuntimeError("shard thread failed") from worker.failure

    # -- pressure ----------------------------------------------------------------------

    @property
    def ingest_lag_seconds(self) -> float:
        """Event-time skew between the dispatch and processing watermarks.

        ``0.0`` until both watermarks exist — before any event was
        submitted, or before any shard processed one, the skew between
        them is not yet defined.
        """
        submitted = self.last_submitted_ts
        processed: float | None = None
        for worker in self._workers:
            mark = worker.engine.metrics.last_event_ts
            if mark is not None and (processed is None or mark > processed):
                processed = mark
        if submitted is None or processed is None:
            return 0.0
        return max(0.0, submitted - processed)

    def pressure_sample(
        self, subscriber_depth: int = 0, subscriber_capacity: int = 0
    ) -> PressureSample:
        """One fleet-wide pressure reading (see :mod:`..observability.pressure`).

        Per-shard queue samples merge first (depths and capacities sum,
        high-water takes the fleet max), then the dispatch-level ingest
        lag and the serving layer's subscriber backlog are folded in
        (passed explicitly, or read from
        :attr:`subscriber_pressure_provider` when left at the defaults).
        """
        if (
            not subscriber_capacity
            and self.subscriber_pressure_provider is not None
        ):
            subscriber_depth, subscriber_capacity = (
                self.subscriber_pressure_provider()
            )
        merged = merge_samples(
            PressureSample(
                queue_depth=worker.queue.qsize(),
                queue_capacity=self.max_queue,
                queue_high_water=worker.queue_high_water,
            )
            for worker in self._workers
        )
        return PressureSample(
            ingest_lag_seconds=self.ingest_lag_seconds,
            queue_depth=merged.queue_depth,
            queue_capacity=merged.queue_capacity,
            queue_high_water=merged.queue_high_water,
            subscriber_depth=subscriber_depth,
            subscriber_capacity=subscriber_capacity,
        )

    def pressure(
        self, subscriber_depth: int = 0, subscriber_capacity: int = 0
    ) -> PressureAssessor:
        """Feed the current sample to the assessor and return it."""
        self.pressure_assessor.observe(
            self.pressure_sample(subscriber_depth, subscriber_capacity)
        )
        return self.pressure_assessor

    def cost_accounts(self) -> dict[str, CostAccount]:
        """Fleet-wide per-query cost accounts (shard accounts merged).

        Views rebuilt from the live shard handles on every call — the
        merged account's counters equal the single-engine account's for
        any shardable workload (each event reaches exactly one shard,
        which registers every query of its group).
        """
        return {
            name: CostAccount.merge(
                CostAccount.from_query(handle) for handle in view.handles
            )
            for name, view in self._views.items()
        }

    # -- barriers ---------------------------------------------------------------------

    def _sync_all(self) -> None:
        acks = []
        for worker in self._workers:
            ack = threading.Event()
            worker.put_op(("sync", ack))
            acks.append(ack)
        for ack in acks:
            ack.wait()

    def _op_all(self, op_kind: str, *payload) -> None:
        acks = []
        for worker in self._workers:
            ack = threading.Event()
            worker.put_op((op_kind, *payload, ack))
            acks.append(ack)
        for ack in acks:
            ack.wait()

    def _release(self, per_view: list[tuple[int, list[Emission]]]) -> list[Emission]:
        """Interleave per-view merged emissions into one global-order stream."""
        tagged = [
            (emission.at_seq, order, position, emission)
            for order, emissions in per_view
            for position, emission in enumerate(emissions)
        ]
        tagged.sort(key=lambda t: t[:3])
        released = [emission for _, _, _, emission in tagged]
        if self.on_emission is not None:
            for emission in released:
                self.on_emission(emission)
        return released

    def sync(self) -> None:
        """Barrier: return once every shard has drained its queue.

        Gives callers read-your-writes over shard-engine state without
        releasing merged emissions (use :meth:`poll` for that).
        """
        if not self._started:
            raise RuntimeError("runner not started")
        if self._stopped or self._flushed:
            raise RuntimeError("runner is stopped")
        with self._lock:
            self._sync_all()
            self._check_failures()

    def poll(self) -> list[Emission]:
        """Non-terminal merge barrier: release whatever is mergeable now.

        Drains every shard queue, runs the merge stage with no barrier
        point (so only epochs every shard has moved past — and
        pass-through emissions — release), and returns the newly merged
        emissions.  The serving layer calls this on a cadence so
        subscribers see merged output between heartbeats.
        """
        if not self._started:
            raise RuntimeError("runner not started")
        if self._stopped or self._flushed:
            return []
        with self._lock:
            self._sync_all()
            self._check_failures()
            per_view = [
                (order, view._merge_ready())
                for order, view in enumerate(self._views.values())
            ]
            return self._release(per_view)

    def subscribe(
        self,
        query_name: str,
        target: SinkLike,
        kinds: EmissionKind | str | Iterable[EmissionKind | str] | None = None,
    ) -> Subscription:
        """Subscribe to one query's merged emission stream.

        Safe while the runner is live: the sink-list mutation happens
        under the dispatch lock, serialising it against merge releases.
        """
        if query_name not in self._views:
            raise KeyError(f"no query named {query_name!r} is registered")
        with self._lock:
            return self._views[query_name].subscribe(target, kinds=kinds)

    def advance_time(self, timestamp: float) -> list[Emission]:
        """Heartbeat barrier: broadcast to every shard, then merge.

        Returns every merged emission this barrier released — both
        heartbeat-triggered output (closed time epochs, confirmed
        pendings) and in-stream output that became mergeable.
        """
        if not self._started:
            raise RuntimeError("runner not started")
        if self._stopped or self._flushed:
            raise RuntimeError("runner is stopped")
        with self._lock:
            self._sync_all()
            self._check_failures()
            per_view: list[tuple[int, list[Emission]]] = []
            views = list(self._views.values())
            for order, view in enumerate(views):
                per_view.append((order, view._merge_ready()))
            for view in views:
                if view.mode != "solo":
                    view._observe_advance(timestamp)
            self._op_all("advance", timestamp)
            self._check_failures()
            for order, view in enumerate(views):
                point = (view.last_routed_seq, timestamp)
                per_view.append((order, view._merge_ready(point=point)))
            return self._release(per_view)

    def flush(self) -> list[Emission]:
        """End-of-stream barrier: flush every shard and merge everything."""
        if not self._started:
            raise RuntimeError("runner not started")
        if self._flushed:
            return []
        with self._lock:
            self._flushed = True
            if self._lateness is not None:
                for released in self._lateness.flush():
                    self._ingest(released)
            self._sync_all()
            self._check_failures()
            per_view: list[tuple[int, list[Emission]]] = []
            views = list(self._views.values())
            for order, view in enumerate(views):
                per_view.append((order, view._merge_ready()))
            self._op_all("flush")
            self._check_failures()
            for order, view in enumerate(views):
                point = (view.last_routed_seq, view.last_ts)
                per_view.append(
                    (order, view._merge_ready(point=point, final=True))
                )
            released = self._release(per_view)
            for view in views:
                view.flush_sinks()
            return released

    # -- introspection -----------------------------------------------------------------

    def query(self, name: str) -> ShardedQuery:
        return self._views[name]

    def queries(self) -> list[ShardedQuery]:
        return list(self._views.values())

    def stats_by_query(self) -> dict[str, dict[str, float]]:
        """Fleet-wide metrics per query, shaped like the engine's."""
        snapshot: dict[str, dict[str, float]] = {}
        for name, view in self._views.items():
            row = view.metrics.snapshot()
            stats = view.matcher.stats
            row.update(
                {
                    "runs_created": stats.runs_created,
                    "runs_pruned": stats.runs_pruned,
                    "peak_live_runs": stats.peak_live_runs,
                    "live_runs": view.matcher.live_run_count,
                    "partition_skips": stats.events_skipped_no_key,
                    "shards": len(view.handles),
                    "solo_fallback": 1.0 if view.solo_fallback else 0.0,
                }
            )
            snapshot[name] = row
        return snapshot

    def shared_stats(self) -> dict[str, int]:
        """Fleet-wide sharing counters, shaped like the engine's.

        Event-driven counters sum across shards; the structural gauges
        (distinct predicates, prefix entries) are per-shard replicas of
        the same index, so the fleet view takes their maximum.
        """
        totals: dict[str, int] = {}
        for worker in self._workers:
            for key, value in worker.engine.shared_stats().items():
                if key in ("distinct_predicates", "prefix_entries"):
                    totals[key] = max(totals.get(key, 0), value)
                else:
                    totals[key] = totals.get(key, 0) + value
        return totals

    def sanitizer_trips(self) -> dict[str, int] | None:
        """Fleet-wide sanitizer trip counts by check (None when disabled)."""
        totals: dict[str, int] | None = None
        for worker in self._workers:
            sanitizer = worker.engine.sanitizer
            if sanitizer is None:
                continue
            if totals is None:
                totals = {}
            for check, count in sanitizer.trips.items():
                totals[check] = totals.get(check, 0) + count
        return totals

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-worker view: events drained, backlog, live runs, role."""
        rows: list[dict[str, Any]] = []
        for index, worker in enumerate(self._workers):
            rows.append(
                {
                    "shard": index,
                    "role": "solo" if worker is self._solo_worker else "sharded",
                    "events_processed": worker.events_processed,
                    "backlog": worker.queue.qsize(),
                    "live_runs": sum(
                        handle.matcher.live_run_count
                        for handle in worker.engine.queries()
                    ),
                }
            )
        return rows

    def profiles_by_query(self) -> dict[str, StageProfile]:
        """Fleet-wide stage profiles per query (absorbed across shards)."""
        profiles: dict[str, StageProfile] = {}
        for name, view in self._views.items():
            profile = view.profile
            if profile is not None:
                profiles[name] = profile
        return profiles

    def metrics_registry(self) -> MetricsRegistry:
        """One fleet registry: per-shard engine registries absorbed, plus
        the runner's own dispatch/queue instruments.

        The absorbed series are value snapshots (counters sum across
        shards, ``max`` gauges take the fleet peak, latency reservoirs
        pool); build a fresh registry per export.
        """
        fleet = merge_registries(
            [worker.engine.metrics_registry() for worker in self._workers]
        )
        for name, view in self._views.items():
            if view.mode == "solo":
                continue
            # Shard-local counters tally per-shard epoch releases; what the
            # deployment observed is the merged emission stream (the same
            # correction ShardedQuery.metrics applies).
            fleet.counter("query_emissions_total", query=name).override(
                view.metrics.emissions
            )
        fleet.counter(
            "runner_events_submitted_total",
            "Events accepted at the dispatch point",
            fn=lambda: self.events_submitted,
        )
        fleet.gauge(
            "runner_backlog",
            "Events queued across all shards, not yet processed",
            fn=lambda: self.backlog,
        )
        fleet.gauge(
            "runner_shards",
            "Worker threads in the fleet",
            fn=lambda: float(len(self._workers)),
        )
        fleet.gauge(
            "runner_recent_throughput_eps",
            "Sliding-window dispatch rate (events/second)",
            fn=lambda: self.metrics.recent_throughput,
        )
        fleet.gauge(
            "runner_queue_capacity",
            "Combined ingest-queue capacity across all shards",
            fn=lambda: float(self.max_queue * len(self._workers)),
        )
        fleet.gauge(
            "runner_queue_high_water",
            "Deepest any shard's ingest queue has been",
            fn=lambda: float(
                max(
                    (worker.queue_high_water for worker in self._workers),
                    default=0,
                )
            ),
            agg="max",
        )
        fleet.gauge(
            "runner_ingest_lag_seconds",
            "Event-time skew between dispatch and processing watermarks",
            fn=lambda: self.ingest_lag_seconds,
            agg="max",
        )
        fleet.gauge(
            "pressure",
            "Composite backpressure score in [0, 1] (smoothed)",
            fn=lambda: self.pressure().level,
            agg="max",
        )
        if self.shed_controller.policy != "off":
            fleet.counter(
                "shed_events_total",
                "Events dropped/elided by the load-shedding controller",
                fn=lambda: self.shed_stats().shed_events_total,
            )
            fleet.counter(
                "shed_safe_total",
                "Sheds provably unable to change output (inert or certified)",
                fn=lambda: self.shed_stats().shed_safe_total,
            )
            fleet.gauge(
                "shed_drop_rate",
                "Current adaptive drop probability (0..1)",
                fn=lambda: self.shed_controller.drop_rate,
                agg="max",
            )
            fleet.gauge(
                "shed_recall_estimate",
                "Measured lower-bound recall of the shedded stream",
                fn=lambda: self.shed_stats().recall_estimate,
            )
            fleet.gauge(
                "shed_engaged",
                "1 while the shedding controller is engaged",
                fn=lambda: 1.0 if self.shed_controller.engaged else 0.0,
                agg="max",
            )
        for index, worker in enumerate(self._workers):
            fleet.counter(
                "shard_events_processed_total",
                "Events drained by each shard's consumer thread",
                fn=lambda worker=worker: worker.events_processed,
                shard=str(index),
            )
        register_lock_metrics(fleet, self._lock)
        return fleet
