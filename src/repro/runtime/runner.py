"""Unified Runner API: one protocol, one config, one factory.

Four execution backends can run a CEPR program, each trading isolation
for throughput differently:

``embedded``
    :class:`EmbeddedRunner` — a synchronous wrapper over one
    :class:`~repro.runtime.engine.CEPREngine` on the caller's thread.
    Zero moving parts; right for scripts, tests, and notebooks.
``threaded``
    :class:`~repro.runtime.concurrent.ThreadedEngineRunner` — one engine
    behind a bounded queue on a consumer thread; producers get
    backpressure, callers get barriers.
``sharded``
    :class:`~repro.runtime.sharded.ShardedEngineRunner` — a fleet of
    engines on worker *threads*, partitioned by the analyzer's
    shardability certificate, merged deterministically.
``process``
    :class:`~repro.runtime.process.ProcessShardedRunner` — the same
    fleet on worker *processes* (own interpreter, own GIL), fed over
    length-prefixed pipe frames.

They share one lifecycle — ``register_query`` / ``start`` / ``submit``
/ barriers (``sync``/``advance_time``/``flush``) / ``snapshot`` /
``restore`` / ``stop`` / ``close`` — captured by the :class:`Runner`
protocol and exercised by the cross-backend conformance suite
(``tests/runtime/test_runner_conformance.py``).

Construction goes through :func:`create_runner`::

    from repro.runtime import RunnerConfig, create_runner

    runner = create_runner(QUERY_TEXT, RunnerConfig(backend="sharded", shards=4))
    with runner:
        runner.submit_all(events)
        runner.flush()

Direct construction of the runner classes still works but is
deprecated (each constructor warns outside the factory); the factory is
the supported path and the only place backend choice stays a config
value instead of a code change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    runtime_checkable,
)

from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.language.ast_nodes import Query
from repro.observability.registry import MetricsRegistry
from repro.ranking.emission import Emission
from repro.runtime._construction import factory_construction
from repro.runtime.concurrent import ThreadedEngineRunner
from repro.runtime.engine import CEPREngine
from repro.runtime.shedding import ShedController
from repro.runtime.sharded import ShardedEngineRunner
from repro.runtime.sinks import SinkLike, Subscription


@runtime_checkable
class Runner(Protocol):
    """The lifecycle every execution backend implements.

    ``isinstance(obj, Runner)`` checks method presence (the protocol is
    runtime-checkable); the semantic contract — deterministic output
    identical across backends for the same program and stream — is
    enforced by the conformance and differential suites.
    """

    def start(self) -> "Runner":
        """Begin accepting events; returns self for chaining."""
        ...

    def stop(self, timeout: float | None = 30.0) -> None:
        """Drain queued work, flush the engine(s), release threads/processes."""
        ...

    def close(self) -> None:
        """Terminal teardown: stop if needed, then close sinks."""
        ...

    def submit(self, event: Event, timeout: float | None = None) -> None:
        """Ingest one event (blocks on backpressure where applicable)."""
        ...

    def submit_all(self, events: Iterable[Event]) -> int:
        """Ingest a stream; returns how many events were accepted."""
        ...

    def sync(self) -> None:
        """Read-your-writes barrier over everything submitted so far."""
        ...

    def advance_time(self, timestamp: float) -> Any:
        """Heartbeat: declare stream time has reached ``timestamp``."""
        ...

    def flush(self) -> Any:
        """End of stream: release pending matches and held rankings."""
        ...

    def subscribe(
        self,
        query_name: str,
        target: SinkLike,
        kinds: object = None,
    ) -> Subscription:
        """Attach a sink/callback to one query, filtered to ``kinds``."""
        ...

    def register_query(self, query: str | Query, name: str | None = None) -> Any:
        """Register a query; returns its handle (backend-specific type)."""
        ...

    def query(self, name: str) -> Any:
        """Look up a registered query handle by name."""
        ...

    def queries(self) -> list:
        """All registered query handles."""
        ...

    def snapshot(self) -> dict:
        """Consistent JSON-safe checkpoint of all mutable state."""
        ...

    def restore(self, state: dict) -> None:
        """Load a snapshot taken by an identically-configured runner."""
        ...

    def stats_by_query(self) -> dict:
        """Per-query counter dict (events routed, matches, emissions, ...)."""
        ...

    def metrics_registry(self) -> MetricsRegistry:
        """Live metrics registry covering engines and runner queues."""
        ...

    def cost_accounts(self) -> dict:
        """Per-query cost accounting snapshot."""
        ...


@dataclass
class RunnerConfig:
    """Declarative construction recipe for :func:`create_runner`.

    Field applicability by backend (everything else is shared):

    * ``shards`` — ``sharded``/``process`` only (worker count).
    * ``max_queue``/``batch_size`` — queue-backed backends
      (``threaded``/``sharded``/``process``); ignored by ``embedded``.
    * ``shed_policy``/``latency_target``/``shed_controller`` —
      ``threaded``/``sharded`` only.  ``embedded`` has no ingest queue
      to shed and ``process`` workers only mirror engine state at
      barriers, so both reject a non-``"off"`` policy.
    * ``tracing`` — engine-level (``embedded``/``threaded``); the
      sharded/process merge stage cannot stitch cross-shard traces, so
      enabling it there raises.

    ``on_emission`` receives every (merged) emission: synchronously on
    the caller's thread for ``embedded``, on the consumer thread for
    ``threaded``, and on the barrier-calling thread for
    ``sharded``/``process``.
    """

    backend: str = "embedded"
    shards: int = 4
    registry: SchemaRegistry | None = None
    strict_schema: bool = False
    enable_pruning: bool = True
    strict_time: bool = False
    lenient_errors: bool = False
    max_lateness: float | None = None
    max_queue: int = 10_000
    batch_size: int = 256
    on_emission: Callable[[Emission], None] | None = None
    sanitize: bool | None = None
    shed_policy: str = "off"
    latency_target: float | None = None
    shed_controller: ShedController | None = None
    compiled: bool = True
    tracing: bool | None = None


class EmbeddedRunner:
    """Synchronous :class:`Runner` over one engine on the caller's thread.

    No queue, no threads: ``submit`` pushes straight into the engine and
    emissions fan out before it returns, so ``sync`` is a no-op and
    results are always current.  This is the embedded engine experience
    (``CEPREngine`` + ``push``) behind the same lifecycle surface as the
    concurrent backends — which is what lets one conformance suite, one
    serving layer, and one CLI treat backend choice as configuration.
    """

    def __init__(
        self,
        engine: CEPREngine,
        on_emission: Callable[[Emission], None] | None = None,
    ) -> None:
        self.engine = engine
        self.on_emission = on_emission
        self.events_submitted = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "EmbeddedRunner":
        """No-op (nothing to spin up); returns self for chaining."""
        return self

    def stop(self, timeout: float | None = 30.0) -> None:
        """Flush the engine (idempotent); ``timeout`` is accepted and unused."""
        self._fan_out(self.engine.flush())

    def close(self) -> None:
        """Flush (if not yet flushed) and close sinks."""
        self._fan_out(self.engine.close())

    def __enter__(self) -> "EmbeddedRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingestion ---------------------------------------------------------------

    def submit(self, event: Event, timeout: float | None = None) -> None:
        """Push one event through the engine synchronously."""
        self._fan_out(self.engine.push(event))
        self.events_submitted += 1

    def submit_all(self, events: Iterable[Event]) -> int:
        """Push a stream through the engine in one batch."""
        count = self.engine.events_pushed
        self._fan_out(self.engine.push_batch(events))
        count = self.engine.events_pushed - count
        self.events_submitted += count
        return count

    # -- barriers ----------------------------------------------------------------

    def sync(self) -> None:
        """No-op: a synchronous runner is always caught up."""

    def advance_time(self, timestamp: float) -> list[Emission]:
        """Heartbeat passthrough; emissions fan out and are returned."""
        emissions = self.engine.advance_time(timestamp)
        self._fan_out(emissions)
        return emissions

    def flush(self) -> list[Emission]:
        """End-of-stream flush; emissions fan out and are returned."""
        emissions = self.engine.flush()
        self._fan_out(emissions)
        return emissions

    # -- queries -----------------------------------------------------------------

    def subscribe(
        self,
        query_name: str,
        target: SinkLike,
        kinds: object = None,
    ) -> Subscription:
        """Attach a sink/callback to one query, filtered to ``kinds``."""
        return self.engine.subscribe(query_name, target, kinds=kinds)

    def register_query(self, query: str | Query, name: str | None = None):
        """Register a query on the wrapped engine."""
        return self.engine.register_query(query, name=name)

    def unregister_query(self, name: str) -> None:
        """Remove a query from the wrapped engine."""
        self.engine.unregister_query(name)

    def query(self, name: str):
        """Look up a registered query handle by name."""
        return self.engine.query(name)

    def queries(self) -> list:
        """All registered query handles."""
        return self.engine.queries()

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Engine snapshot (trivially consistent: nothing is in flight)."""
        return self.engine.snapshot()

    def restore(self, state: dict) -> None:
        """Load a snapshot into the wrapped engine."""
        self.engine.restore(state)

    # -- observability -----------------------------------------------------------

    @property
    def metrics(self):
        """The wrapped engine's :class:`~repro.runtime.metrics.EngineMetrics`."""
        return self.engine.metrics

    def stats_by_query(self) -> dict:
        """Per-query counter dict from the wrapped engine."""
        return self.engine.stats_by_query()

    def metrics_registry(self) -> MetricsRegistry:
        """The wrapped engine's live metrics registry."""
        return self.engine.metrics_registry()

    def cost_accounts(self) -> dict:
        """Per-query cost accounting snapshot."""
        return self.engine.cost_accounts()

    def _fan_out(self, emissions: list[Emission]) -> None:
        if self.on_emission is not None:
            for emission in emissions:
                self.on_emission(emission)


# -- factory ---------------------------------------------------------------------

#: Program forms ``create_runner`` accepts (besides ``None``).
ProgramLike = (
    "str | Query | Mapping[str, str | Query] | Iterable[str | Query]"
)


def _iter_program(
    program: object,
) -> Iterator[tuple[str | None, str | Query]]:
    if program is None:
        return
    if isinstance(program, (str, Query)):
        yield None, program
        return
    if isinstance(program, Mapping):
        for name, query in program.items():
            yield name, query
        return
    if isinstance(program, Iterable):
        for query in program:
            if not isinstance(query, (str, Query)):
                raise TypeError(
                    "program items must be CEPR-QL text or Query ASTs, "
                    f"got {type(query).__name__}"
                )
            yield None, query
        return
    raise TypeError(
        "program must be CEPR-QL text, a Query AST, an iterable of "
        f"either, or a name->query mapping; got {type(program).__name__}"
    )


def _engine_from(config: RunnerConfig) -> CEPREngine:
    return CEPREngine(
        registry=config.registry,
        strict_schema=config.strict_schema,
        enable_pruning=config.enable_pruning,
        strict_time=config.strict_time,
        lenient_errors=config.lenient_errors,
        max_lateness=config.max_lateness,
        tracing=config.tracing,
        sanitize=config.sanitize,
        compiled=config.compiled,
    )


def _reject_tracing(config: RunnerConfig) -> None:
    if config.tracing:
        raise ValueError(
            f"backend {config.backend!r} does not support per-emission "
            "tracing (the merge stage cannot stitch cross-shard traces); "
            "use backend='embedded' or 'threaded'"
        )


def _build_embedded(config: RunnerConfig) -> EmbeddedRunner:
    if config.shed_policy != "off" or config.shed_controller is not None:
        raise ValueError(
            "backend 'embedded' has no ingest queue to shed; "
            "use backend='threaded' for load shedding"
        )
    return EmbeddedRunner(_engine_from(config), on_emission=config.on_emission)


def _build_threaded(config: RunnerConfig) -> ThreadedEngineRunner:
    return ThreadedEngineRunner(
        _engine_from(config),
        on_emission=config.on_emission,
        max_queue=config.max_queue,
        batch_size=config.batch_size,
        shed_policy=config.shed_policy,
        latency_target=config.latency_target,
        shed_controller=config.shed_controller,
    )


def _sharded_kwargs(config: RunnerConfig) -> dict:
    return dict(
        shards=config.shards,
        registry=config.registry,
        strict_schema=config.strict_schema,
        enable_pruning=config.enable_pruning,
        strict_time=config.strict_time,
        lenient_errors=config.lenient_errors,
        max_lateness=config.max_lateness,
        max_queue=config.max_queue,
        batch_size=config.batch_size,
        on_emission=config.on_emission,
        sanitize=config.sanitize,
        compiled=config.compiled,
    )


def _build_sharded(config: RunnerConfig) -> ShardedEngineRunner:
    _reject_tracing(config)
    return ShardedEngineRunner(
        shed_policy=config.shed_policy,
        latency_target=config.latency_target,
        shed_controller=config.shed_controller,
        **_sharded_kwargs(config),
    )


def _build_process(config: RunnerConfig):
    # Imported lazily: repro.runtime.process pulls in the serve-layer
    # frame codec, whose package init imports the server, which imports
    # this module — a cycle at import time, but not at call time.
    from repro.runtime.process import ProcessShardedRunner

    _reject_tracing(config)
    # ProcessShardedRunner itself rejects shedding (worker engine state
    # is only mirrored at barriers); pass through so the error is its.
    return ProcessShardedRunner(
        shed_policy=config.shed_policy,
        shed_controller=config.shed_controller,
        **_sharded_kwargs(config),
    )


_BACKENDS: dict[str, Callable[[RunnerConfig], Any]] = {
    "embedded": _build_embedded,
    "threaded": _build_threaded,
    "sharded": _build_sharded,
    "process": _build_process,
}


def create_runner(
    program: object = None,
    config: RunnerConfig | None = None,
    **overrides,
) -> Runner:
    """Build a :class:`Runner` for ``program`` per ``config``.

    ``program`` may be CEPR-QL text, a parsed ``Query`` AST, an iterable
    of either, a ``{name: query}`` mapping, or ``None`` (register later
    via ``runner.register_query``).  ``config`` defaults to
    ``RunnerConfig()`` (embedded backend); keyword ``overrides`` are
    applied on top with :func:`dataclasses.replace`, so the common cases
    stay one-liners::

        create_runner(text)                                   # embedded
        create_runner(text, backend="threaded")
        create_runner(text, backend="process", shards=4)
        create_runner(text, RunnerConfig(backend="sharded"), shards=8)

    The runner is returned **unstarted**: register any further queries,
    then ``start()`` (or use it as a context manager).  Unknown backends
    and backend/feature mismatches (shedding on ``embedded``/``process``,
    tracing on ``sharded``/``process``) raise ``ValueError`` here rather
    than failing later at runtime.
    """
    if config is None:
        config = RunnerConfig()
    if overrides:
        config = replace(config, **overrides)
    try:
        build = _BACKENDS[config.backend]
    except KeyError:
        raise ValueError(
            f"unknown runner backend {config.backend!r}; "
            f"expected one of {sorted(_BACKENDS)}"
        ) from None
    with factory_construction():
        runner = build(config)
    for name, query in _iter_program(program):
        runner.register_query(query, name=name)
    return runner
