"""Event routing and shared multi-query execution state.

Two layers live here (see docs/SHARED_EXECUTION.md):

* :class:`EventRouter` — the type-indexed dispatch table from events to
  queries, so pushing an event touches only interested queries instead of
  broadcasting (the original lever behind the multi-query experiment E8).
* :class:`SharedExecutionIndex` — the cross-query sharing state that turns
  per-event serving cost from O(queries) toward O(distinct predicates):

  - a **shared predicate index** keyed by the alpha-invariant fingerprints
    computed in :mod:`repro.language.fingerprint`.  Every self-contained
    predicate (value depends only on the candidate event) registered by
    any query lands in one refcounted entry; per event, each distinct
    fingerprint is evaluated at most once and the boolean result is fanned
    out to every consulting query through a per-event memo.
  - an **NFA prefix intern pool**: queries compiled from a common pattern
    head reuse the same :class:`~repro.engine.nfa.Stage` objects for the
    shared prefix and fork only at the first divergent stage, which also
    lets the per-event *stage gate* (can this event start a run?) be
    memoized per shared stage object instead of per query.

  The router keeps both structures in sync with registration churn:
  :meth:`EventRouter.add` claims entries for a query,
  :meth:`EventRouter.remove` releases them and **fully prunes** entries
  whose last referencing query unregistered, so a serving fleet with
  register/unregister churn never accumulates stale index state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.events.event import Event
from repro.language.errors import EvaluationError
from repro.language.expressions import EvalContext, evaluate_predicate
from repro.runtime.query import RegisteredQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.matcher import MatcherStats
    from repro.engine.nfa import PatternAutomaton, Stage
    from repro.language.semantics import PredicateSpec


@dataclass
class _PredicateEntry:
    """One distinct predicate shared across registered queries."""

    #: Representative spec whose compiled evaluator serves all queries with
    #: this fingerprint (sound: equal fingerprints evaluate identically).
    spec: "PredicateSpec"
    owners: set[str] = field(default_factory=set)


@dataclass
class _PrefixEntry:
    """One interned automaton prefix state (a stage at a chain position)."""

    stage: "Stage"
    owners: set[str] = field(default_factory=set)


class SharedExecutionIndex:
    """Cross-query predicate index, prefix intern pool, and per-event memo.

    One instance is owned by each engine's router.  The per-event memo is
    (re)armed by :meth:`begin_event` at the top of the engine's dispatch
    and consulted by the matchers of every routed query, so a predicate
    fingerprint is evaluated at most once per event no matter how many
    queries anchor it.
    """

    def __init__(self) -> None:
        self._predicates: dict[str, _PredicateEntry] = {}
        self._prefixes: dict[str, _PrefixEntry] = {}
        #: event the memo tables below are valid for (identity-checked).
        self.current_event: Event | None = None
        self._memo: dict[str, tuple[bool, EvaluationError | None]] = {}
        self._gate_memo: dict[int, tuple[bool, int, EvaluationError | None]] = {}
        #: (stage id, stats id) pairs already charged a gate consultation
        #: for the current event — the quiescent fast path and the matcher
        #: may both consult the same gate for one event, but the per-query
        #: cost account must see exactly one consultation either way (that
        #: invariance is what keeps the accounts exact under sharding).
        self._gate_charged: set[tuple[int, int]] = set()
        #: predicate evaluations answered from the per-event memo.
        self.predicate_evals_saved = 0
        #: predicate evaluations actually performed through the index.
        self.predicate_evals_performed = 0
        #: stage slots answered from the intern pool instead of compiled anew.
        self.prefix_states_shared = 0
        #: routed (query, event) pairs skipped by the quiescent-gate fast path.
        self.events_gated = 0

    # -- introspection ----------------------------------------------------------

    @property
    def distinct_predicates(self) -> int:
        return len(self._predicates)

    @property
    def prefix_entries(self) -> int:
        return len(self._prefixes)

    def is_empty(self) -> bool:
        """True when no query holds any index or prefix entry (churn test)."""
        return not self._predicates and not self._prefixes

    def predicate_owners(self, fingerprint: str) -> frozenset[str]:
        entry = self._predicates.get(fingerprint)
        return frozenset(entry.owners) if entry is not None else frozenset()

    def prefix_owners(self, key: str) -> frozenset[str]:
        entry = self._prefixes.get(key)
        return frozenset(entry.owners) if entry is not None else frozenset()

    def counters(self) -> dict[str, int]:
        """Snapshot of the sharing counters (``cepr stats``, benchmarks)."""
        return {
            "distinct_predicates": self.distinct_predicates,
            "prefix_entries": self.prefix_entries,
            "predicate_evals_saved": self.predicate_evals_saved,
            "predicate_evals_performed": self.predicate_evals_performed,
            "prefix_states_shared": self.prefix_states_shared,
            "events_gated": self.events_gated,
        }

    # -- registration lifecycle -------------------------------------------------

    def intern_stage(self, key: str, stage: "Stage") -> "Stage":
        """Return the canonical stage for ``key``, registering ``stage`` if new.

        Called by the compiler while building an automaton inside an
        engine that shares execution: equal keys mean the stages are
        interchangeable (same variable name, element type, and canonical
        predicate chain — and, through the chained key, an identical
        prefix), so later queries reuse the first query's stage object.
        """
        entry = self._prefixes.get(key)
        if entry is None:
            self._prefixes[key] = _PrefixEntry(stage=stage)
            return stage
        self.prefix_states_shared += 1
        return entry.stage

    def add_query(self, query: RegisteredQuery) -> None:
        """Claim predicate and prefix entries for a newly routed query."""
        name = query.name
        for spec in _shareable_specs(query.automaton):
            entry = self._predicates.get(spec.fingerprint)  # type: ignore[arg-type]
            if entry is None:
                self._predicates[spec.fingerprint] = _PredicateEntry(  # type: ignore[index]
                    spec=spec, owners={name}
                )
            else:
                entry.owners.add(name)
        for key in query.automaton.prefix_keys:
            entry = self._prefixes.get(key)
            if entry is not None:
                entry.owners.add(name)

    def remove_query(self, query: RegisteredQuery) -> None:
        """Release a query's entries; prune those it referenced last.

        Without the pruning, a serving fleet with registration churn would
        leak one index entry (and keep one compiled evaluator alive) per
        distinct predicate ever registered.
        """
        name = query.name
        for spec in _shareable_specs(query.automaton):
            entry = self._predicates.get(spec.fingerprint)  # type: ignore[arg-type]
            if entry is None:
                continue
            entry.owners.discard(name)
            if not entry.owners:
                del self._predicates[spec.fingerprint]  # type: ignore[arg-type]
        for key in query.automaton.prefix_keys:
            entry = self._prefixes.get(key)
            if entry is None:
                continue
            entry.owners.discard(name)
            if not entry.owners:
                del self._prefixes[key]

    # -- per-event evaluation ---------------------------------------------------

    def begin_event(self, event: Event) -> None:
        """Arm the per-event memo for ``event`` (engine dispatch calls this)."""
        self.current_event = event
        self._memo.clear()
        self._gate_memo.clear()
        self._gate_charged.clear()

    def predicate_holds(
        self, spec: "PredicateSpec", stats: "MatcherStats", lenient: bool
    ) -> bool:
        """Shared evaluation of one fingerprinted predicate for the current event.

        The boolean (or the raised :class:`EvaluationError`) is computed
        once per event per fingerprint; every consulting query applies its
        own error policy to the memoized outcome, so per-query error
        accounting matches independent execution.
        """
        result, error = self._outcome(spec, stats)
        if error is not None:
            if not lenient:
                raise error
            stats.evaluation_errors += 1
            return False
        return result

    def stage_gate(
        self, stage: "Stage", stats: "MatcherStats", lenient: bool
    ) -> bool:
        """Can the current event bind ``stage`` as a fresh run's first element?

        Equivalent to evaluating the stage's entry predicates against an
        empty context, but memoized twice over: per stage object (shared
        prefixes answer in one dict hit for every query reusing the stage)
        and per predicate fingerprint (differently-grouped stages still
        share individual predicate outcomes).  Predicates without a
        fingerprint disable the whole-stage memo but are still evaluated
        with identical semantics.

        Per-query hit/miss charging is deduplicated per event: the
        quiescent fast path and the matcher may both consult the same
        gate for one event (the probe primes the memo, the matcher then
        hits it), but quiescence is engine-local state — a sharded fleet
        wakes per shard — so the double consult must count once.  Each
        (stage, query) pair is charged exactly one consultation per
        event regardless of which path asked first, which is what keeps
        per-query cost accounts counter-exact across shard splits.
        """
        key = id(stage)
        charge_key = (key, id(stats))
        cached = self._gate_memo.get(key)
        if cached is not None:
            self.predicate_evals_saved += 1
            if charge_key not in self._gate_charged:
                self._gate_charged.add(charge_key)
                stats.shared_hits += 1
            result, errors, error = cached
            if errors:
                if not lenient:
                    raise error
                stats.evaluation_errors += errors
            return result

        predicates = (
            stage.incremental_predicates if stage.is_kleene else stage.bind_predicates
        )
        # The evaluating consult is charged through _outcome below (one
        # miss or memo hit per fingerprinted predicate); mark the pair so
        # a second consult for the same event does not charge again.
        self._gate_charged.add(charge_key)
        result = True
        errors = 0
        first_error: EvaluationError | None = None
        memoizable = True
        for spec in predicates:
            if spec.fingerprint is None:
                memoizable = False
                value, error = self._evaluate(spec)
            else:
                value, error = self._outcome(spec, stats)
            if error is not None:
                first_error = error
                errors += 1
                result = False
                break
            if not value:
                result = False
                break
        if memoizable:
            self._gate_memo[key] = (result, errors, first_error)
        if first_error is not None and not lenient:
            raise first_error
        stats.evaluation_errors += errors
        return result

    def _outcome(
        self, spec: "PredicateSpec", stats: "MatcherStats"
    ) -> tuple[bool, EvaluationError | None]:
        """Memoized raw outcome of one fingerprinted predicate.

        The hit/miss split is charged to the *consulting* query's stats —
        that per-query attribution is what the cost accounts read, so
        ``cepr top`` can show which queries ride the shared index and
        which pay for it.
        """
        fingerprint = spec.fingerprint
        assert fingerprint is not None
        cached = self._memo.get(fingerprint)
        if cached is not None:
            self.predicate_evals_saved += 1
            stats.shared_hits += 1
            return cached
        stats.shared_misses += 1
        entry = self._predicates.get(fingerprint)
        representative = entry.spec if entry is not None else spec
        outcome = self._evaluate(representative)
        self._memo[fingerprint] = outcome
        return outcome

    def _evaluate(
        self, spec: "PredicateSpec"
    ) -> tuple[bool, EvaluationError | None]:
        """Evaluate a self-contained predicate against the current event."""
        self.predicate_evals_performed += 1
        ctx = EvalContext(
            bindings={},
            current_var=spec.anchor_var,
            current_event=self.current_event,
        )
        try:
            return evaluate_predicate(spec.evaluator, ctx), None
        except EvaluationError as error:
            return False, error


def _shareable_specs(automaton: "PatternAutomaton") -> Iterator["PredicateSpec"]:
    """Every fingerprinted predicate an automaton anchors anywhere."""
    for stage in automaton.stages:
        for spec in stage.bind_predicates:
            if spec.fingerprint is not None:
                yield spec
        for spec in stage.incremental_predicates:
            if spec.fingerprint is not None:
                yield spec
    for negation in automaton.negations:
        for spec in negation.predicates:
            if spec.fingerprint is not None:
                yield spec


class EventRouter:
    """Type-indexed dispatch table from events to queries.

    When constructed with a :class:`SharedExecutionIndex` (the default
    inside :class:`~repro.runtime.engine.CEPREngine`), the router also
    keeps the shared predicate/prefix entries in sync with query
    registration and unregistration.
    """

    def __init__(self, shared: SharedExecutionIndex | None = None) -> None:
        self._by_type: dict[str, list[RegisteredQuery]] = {}
        self._queries: list[RegisteredQuery] = []
        self.shared = shared

    def add(self, query: RegisteredQuery) -> None:
        self._queries.append(query)
        for event_type in query.relevant_types:
            self._by_type.setdefault(event_type, []).append(query)
        if self.shared is not None:
            self.shared.add_query(query)

    def remove(self, query: RegisteredQuery) -> None:
        self._queries.remove(query)
        for event_type in query.relevant_types:
            bucket = self._by_type.get(event_type)
            if bucket is not None and query in bucket:
                bucket.remove(query)
                if not bucket:
                    del self._by_type[event_type]
        if self.shared is not None:
            self.shared.remove_query(query)

    def route(self, event: Event) -> list[RegisteredQuery]:
        """Queries interested in ``event``'s type (possibly empty)."""
        return self._by_type.get(event.event_type, [])

    def queries(self) -> list[RegisteredQuery]:
        return list(self._queries)

    def interested_types(self) -> frozenset[str]:
        return frozenset(self._by_type)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterable[RegisteredQuery]:
        return iter(self._queries)
