"""Event routing for multi-query deployments.

The router indexes registered queries by the event types they observe
(pattern element types, including negations), so pushing an event touches
only interested queries instead of broadcasting — the main lever behind the
multi-query scaling experiment (E8).
"""

from __future__ import annotations

from typing import Iterable

from repro.events.event import Event
from repro.runtime.query import RegisteredQuery


class EventRouter:
    """Type-indexed dispatch table from events to queries."""

    def __init__(self) -> None:
        self._by_type: dict[str, list[RegisteredQuery]] = {}
        self._queries: list[RegisteredQuery] = []

    def add(self, query: RegisteredQuery) -> None:
        self._queries.append(query)
        for event_type in query.relevant_types:
            self._by_type.setdefault(event_type, []).append(query)

    def remove(self, query: RegisteredQuery) -> None:
        self._queries.remove(query)
        for event_type in query.relevant_types:
            bucket = self._by_type.get(event_type)
            if bucket is not None and query in bucket:
                bucket.remove(query)
                if not bucket:
                    del self._by_type[event_type]

    def route(self, event: Event) -> list[RegisteredQuery]:
        """Queries interested in ``event``'s type (possibly empty)."""
        return self._by_type.get(event.event_type, [])

    def queries(self) -> list[RegisteredQuery]:
        return list(self._queries)

    def interested_types(self) -> frozenset[str]:
        return frozenset(self._by_type)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterable[RegisteredQuery]:
        return iter(self._queries)
