"""JSON serialisation of matches and emissions.

Shared by the CLI's ``--output jsonl`` mode and
:class:`~repro.runtime.sinks.JSONLSink`, so downstream consumers see one
stable schema: an emission object with a ``ranking`` array of match
objects, each carrying its query name, rank values, time span, and full
bindings.

Non-finite floats (NaN/Infinity) are not valid JSON; bare ``json.dumps``
would happily emit them and break strict parsers downstream.  Event
payloads are scrubbed through :mod:`repro.events.jsonsafe` — affected
attributes serialise as ``null`` plus a ``"~nf"`` flag field naming the
original value — and rank values get the same treatment as a
positional flag map.  :func:`event_from_json` and
:func:`emission_from_line` reverse it, so a NaN sensor reading survives a
round trip through a JSONL sink.
"""

from __future__ import annotations

import json
from typing import Any

from repro.engine.match import Match
from repro.events.event import Event
from repro.events.jsonsafe import NONFINITE_KEY, classify, dumps, scrub, unscrub
from repro.ranking.emission import Emission


def event_to_json(event: Event) -> dict[str, Any]:
    """One event as a JSON-compatible dict (type + timestamp + payload)."""
    payload, flags = scrub(event.payload)
    doc = {"type": event.event_type, "t": event.timestamp, **payload}
    if flags:
        doc[NONFINITE_KEY] = flags
    return doc


def event_from_json(doc: dict[str, Any]) -> Event:
    """Inverse of :func:`event_to_json` (non-finite flags restored)."""
    payload = {
        k: v for k, v in doc.items() if k not in ("type", "t", NONFINITE_KEY)
    }
    unscrub(payload, doc.get(NONFINITE_KEY, {}))
    return Event(doc["type"], doc["t"], **payload)


def match_to_json(match: Match) -> dict[str, Any]:
    """One match as a JSON-compatible dict (query, rank values, bindings)."""
    bindings: dict[str, Any] = {}
    for var, binding in match.bindings.items():
        if isinstance(binding, Event):
            bindings[var] = event_to_json(binding)
        else:
            bindings[var] = [event_to_json(e) for e in binding]
    rank_values: list[Any] = []
    rank_flags: dict[str, str] = {}
    for index, value in enumerate(match.rank_values):
        kind = classify(value)
        if kind is not None:
            rank_flags[str(index)] = kind
            rank_values.append(None)
        else:
            rank_values.append(value)
    doc = {
        "query": match.query_name,
        "rank_values": rank_values,
        "first_ts": match.first_ts,
        "last_ts": match.last_ts,
        "bindings": bindings,
    }
    if rank_flags:
        doc[NONFINITE_KEY] = rank_flags
    return doc


def emission_to_json(emission: Emission) -> dict[str, Any]:
    """One emission as a JSON-compatible dict with its full ranking."""
    return {
        "kind": emission.kind.value,
        "at_ts": emission.at_ts,
        "epoch": emission.epoch,
        "revision": emission.revision,
        "ranking": [match_to_json(m) for m in emission.ranking],
    }


def emission_to_line(emission: Emission) -> str:
    """One emission as a compact JSON line (strict: rejects bare NaN)."""
    return dumps(emission_to_json(emission))


def emission_from_line(line: str) -> dict[str, Any]:
    """Parse one JSONL emission line back to a dict, restoring non-finite
    rank values and payload attributes flagged by the encoder."""
    doc = json.loads(line)
    for match_doc in doc.get("ranking", []):
        rank_flags = match_doc.pop(NONFINITE_KEY, {})
        values = match_doc.get("rank_values", [])
        unscrub_values = {int(i): kind for i, kind in rank_flags.items()}
        for index, kind in unscrub_values.items():
            restored: dict[str, Any] = {"v": None}
            unscrub(restored, {"v": kind})
            values[index] = restored["v"]
        for binding in match_doc.get("bindings", {}).values():
            event_docs = binding if isinstance(binding, list) else [binding]
            for event_doc in event_docs:
                unscrub(event_doc, event_doc.pop(NONFINITE_KEY, {}))
    return doc
