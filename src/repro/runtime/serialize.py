"""JSON serialisation of matches and emissions.

Shared by the CLI's ``--output jsonl`` mode and
:class:`~repro.runtime.sinks.JSONLSink`, so downstream consumers see one
stable schema: an emission object with a ``ranking`` array of match
objects, each carrying its query name, rank values, time span, and full
bindings.
"""

from __future__ import annotations

import json
from typing import Any

from repro.engine.match import Match
from repro.events.event import Event
from repro.ranking.emission import Emission


def event_to_json(event: Event) -> dict[str, Any]:
    """One event as a JSON-compatible dict (type + timestamp + payload)."""
    return {"type": event.event_type, "t": event.timestamp, **event.payload}


def match_to_json(match: Match) -> dict[str, Any]:
    """One match as a JSON-compatible dict (query, rank values, bindings)."""
    bindings: dict[str, Any] = {}
    for var, binding in match.bindings.items():
        if isinstance(binding, Event):
            bindings[var] = event_to_json(binding)
        else:
            bindings[var] = [event_to_json(e) for e in binding]
    return {
        "query": match.query_name,
        "rank_values": list(match.rank_values),
        "first_ts": match.first_ts,
        "last_ts": match.last_ts,
        "bindings": bindings,
    }


def emission_to_json(emission: Emission) -> dict[str, Any]:
    """One emission as a JSON-compatible dict with its full ranking."""
    return {
        "kind": emission.kind.value,
        "at_ts": emission.at_ts,
        "epoch": emission.epoch,
        "revision": emission.revision,
        "ranking": [match_to_json(m) for m in emission.ranking],
    }


def emission_to_line(emission: Emission) -> str:
    """One emission as a compact JSON line."""
    return json.dumps(emission_to_json(emission))
