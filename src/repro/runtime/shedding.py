"""Rank-aware adaptive load shedding with overload control.

When a deployment is overloaded — the :class:`~repro.observability.
pressure.PressureAssessor` enters ``overloaded``, or ingest lag exceeds
the configured latency target — the runner engages a
:class:`ShedController` that drops the events *least likely to matter*
for the ranked output, instead of letting the bounded queues push the
latency unboundedly up.  Two policies exist (``docs/SHEDDING.md``):

* **exact** — events are elided *inside* the engine, after sequencing,
  and only under a safety certificate from
  :meth:`~repro.runtime.query.RegisteredQuery.shed_probe`: the event is
  provably inert for the query, or a score-bound headroom computation
  (the same interval arithmetic the run pruner uses, against the current
  k-th retained score) proves no run it could start can crack the top-k.
  Output is **byte-identical** to the unshedded run — the differential
  suite and a CEPRSan invariant enforce it — so exact shedding only
  saves work, never recall.
* **adaptive** — events are dropped *before* the engine, with a
  rank-weighted probability adapted (AIMD) toward the latency target:
  ``protected`` events (bound into live partial matches) are never
  dropped, ``safe`` events are dropped preferentially, and
  ``uncertified`` events are sampled — at a reduced rate when their
  bound headroom shows they could still crack the top-k.  The measured
  recall estimate (``1 - uncertified sheds / uncertified offered``)
  quantifies what the approximation may have cost.

The controller is deterministic for a fixed call sequence (private
seeded RNG, no wall-clock reads of its own) and owns a **private**
pressure assessor — the runner's assessor is mutated by every registry
export, so sharing it would couple the shedding state machine to the
observability scrape cadence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Iterable

from repro.events.event import Event
from repro.observability.flightrec import current as flightrec_current
from repro.observability.pressure import PressureAssessor, PressureSample
from repro.runtime.query import (
    SHED_PROTECTED,
    SHED_SAFE,
    SHED_UNCERTIFIED,
)

#: default ingest-lag target (seconds of event-time skew) the adaptive
#: policy steers toward; ``--latency-target`` overrides it in serve.
DEFAULT_LATENCY_TARGET_SECONDS = 1.0

#: the adaptive drop probability never exceeds this — some fraction of
#: uncertified events always gets through, so the recall estimate stays
#: an estimate of a sample, not of a blackout.
MAX_DROP_RATE = 0.95

#: multiplicative boost for provably-safe drops: when the sampler runs
#: at rate p, safe events shed at min(1, BOOST * p) — free capacity.
SAFE_DROP_BOOST = 4.0

#: rate multiplier for uncertified events whose bound headroom is known
#: and <= 0 (they could still crack the top-k): shed reluctantly.
RISKY_DROP_FACTOR = 0.25


@dataclass
class ShedStats:
    """Shedding counters (per controller; summed across a fleet)."""

    #: events the engaged controller looked at (exact probes + samples).
    offered: int = 0
    #: events kept because they touch live partial-match state.
    protected_total: int = 0
    #: sheds backed by a score-bound certificate (subset of safe sheds).
    certified_total: int = 0
    #: events classified uncertified while engaged (recall denominator).
    uncertified_offered: int = 0
    #: uncertified events actually dropped (recall numerator).
    uncertified_shed: int = 0
    #: every shed event, regardless of class.
    shed_events_total: int = 0
    #: sheds that provably cannot change output (inert or certified).
    shed_safe_total: int = 0
    #: lossy sampled drops (adaptive policy only).
    shed_sampled_total: int = 0
    #: ok -> engaged transitions.
    engagements: int = 0

    def absorb(self, other: "ShedStats") -> None:
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    @property
    def recall_estimate(self) -> float:
        """Measured lower-bound recall of the shedded stream.

        Only *uncertified* drops can lose matches, so the estimate is the
        fraction of uncertified events that survived; certified/inert
        sheds never lower it.  1.0 when nothing uncertified was offered.
        """
        if self.uncertified_offered == 0:
            return 1.0
        return 1.0 - self.uncertified_shed / self.uncertified_offered

    def to_dict(self) -> dict[str, Any]:
        doc = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        doc["recall_estimate"] = round(self.recall_estimate, 6)
        return doc


def merge_shed_stats(parts: Iterable[ShedStats]) -> ShedStats:
    """Sum per-controller counters into one fleet view."""
    total = ShedStats()
    for part in parts:
        total.absorb(part)
    return total


class ShedController:
    """Overload state machine + rank-weighted drop policy.

    Parameters
    ----------
    policy:
        ``"off"`` (never sheds; zero hot-path cost — the engine checks a
        single ``is None``), ``"exact"`` (bound-certified elides only),
        or ``"adaptive"`` (lossy rank-weighted sampling).
    latency_target:
        Ingest-lag budget in seconds; lag above it counts as overload
        even while the composite pressure score is still below the
        assessor's enter threshold.
    assessor:
        Private :class:`PressureAssessor` override (tests inject
        pre-tuned hysteresis); a fresh one is built by default.
    seed:
        Seed of the private sampling RNG — decisions are deterministic
        for a fixed offered sequence.
    force:
        Engage regardless of pressure.  The differential suites and the
        overload benchmark use this to exercise shedding deterministically
        on streams that never saturate a queue.
    """

    def __init__(
        self,
        policy: str = "off",
        latency_target: float = DEFAULT_LATENCY_TARGET_SECONDS,
        assessor: PressureAssessor | None = None,
        seed: int = 2016,
        force: bool = False,
    ) -> None:
        if policy not in ("off", "exact", "adaptive"):
            raise ValueError(
                f"shed policy must be off|exact|adaptive, got {policy!r}"
            )
        if latency_target <= 0:
            raise ValueError(
                f"latency_target must be positive, got {latency_target}"
            )
        self.policy = policy
        self.latency_target = latency_target
        self.assessor = assessor if assessor is not None else PressureAssessor()
        self.force = force
        self.engaged = force
        self.drop_rate = 0.0
        self.stats = ShedStats()
        #: CEPRSan hook: when armed, every exact-mode certified shed is
        #: independently re-derived before the elide (see invariants.py).
        self.invariant_checker = None
        self._rng = random.Random(seed)
        #: captured once, like the engine does — disabled cost is one check.
        self._flightrec = flightrec_current()

    # -- state machine -----------------------------------------------------------

    @property
    def exact_active(self) -> bool:
        return self.policy == "exact" and self.engaged

    @property
    def adaptive_active(self) -> bool:
        return self.policy == "adaptive" and self.engaged

    @property
    def recall_estimate(self) -> float:
        return self.stats.recall_estimate

    def control(
        self,
        sample: PressureSample | float | None = None,
        lag_seconds: float = 0.0,
    ) -> None:
        """One control tick: fold a pressure reading, adapt the policy.

        AIMD on the adaptive drop rate: grow multiplicatively while the
        deployment is overloaded or behind the latency target, halve when
        it recovers, disengage once the rate decays away (exact mode
        disengages directly on recovery — it has no rate to unwind, and
        its sheds are free of recall cost anyway).
        """
        if self.policy == "off":
            return
        if sample is not None:
            self.assessor.observe(sample)
        behind = self.assessor.overloaded or lag_seconds > self.latency_target
        if self.force or behind:
            self._engage()
            if self.policy == "adaptive":
                self.drop_rate = min(
                    MAX_DROP_RATE, self.drop_rate * 1.5 + 0.05
                )
            return
        if self.policy == "adaptive" and self.drop_rate >= 0.01:
            self.drop_rate *= 0.5
            return
        self.drop_rate = 0.0
        self._disengage()

    def _engage(self) -> None:
        if self.engaged:
            return
        self.engaged = True
        self.stats.engagements += 1
        if self._flightrec is not None:
            self._flightrec.record(
                "shed-engage",
                policy=self.policy,
                pressure=round(self.assessor.level, 4),
            )

    def _disengage(self) -> None:
        if not self.engaged:
            return
        self.engaged = False
        if self._flightrec is not None:
            self._flightrec.record(
                "shed-disengage",
                policy=self.policy,
                shed_events=self.stats.shed_events_total,
                recall_estimate=round(self.recall_estimate, 4),
            )

    # -- exact-mode accounting (called from the engine dispatch loop) -----------

    def note_exact_shed(self, certified: bool) -> None:
        """One event elided under a safety certificate."""
        stats = self.stats
        stats.offered += 1
        stats.shed_events_total += 1
        stats.shed_safe_total += 1
        if certified:
            stats.certified_total += 1

    def note_exact_kept(self, classification: str) -> None:
        """One probed event that took the full match path."""
        stats = self.stats
        stats.offered += 1
        if classification is SHED_PROTECTED:
            stats.protected_total += 1
        elif classification is SHED_UNCERTIFIED:
            stats.uncertified_offered += 1

    # -- adaptive-mode sampling (called from the runner's ingest path) ----------

    def admit(self, event: Event, probes, seq_hint: int | None = None) -> bool:
        """Adaptive drop decision: ``False`` means drop before the engine.

        ``probes`` are the query handles the event would reach
        (anything with ``shed_probe``); the event's class is the *worst*
        across them — protected for any query protects it outright.
        Sharded runners probe worker engines from the dispatch thread, so
        a probe racing that worker's consumer may fail mid-read; any such
        failure demotes the verdict to uncertified (shed reluctantly),
        never to safe.
        """
        if not self.adaptive_active:
            return True
        stats = self.stats
        stats.offered += 1
        worst = SHED_SAFE
        risky = False
        certified = False
        for query in probes:
            try:
                classification, headroom = query.shed_probe(
                    event, seq_hint=seq_hint
                )
            except Exception:
                classification, headroom = SHED_UNCERTIFIED, None
            if classification is SHED_PROTECTED:
                stats.protected_total += 1
                return True
            if classification is SHED_UNCERTIFIED:
                worst = SHED_UNCERTIFIED
                if headroom is not None and headroom <= 0:
                    risky = True
            elif headroom is not None:
                certified = True
        probability = self.drop_rate
        if worst is SHED_SAFE:
            probability = min(1.0, SAFE_DROP_BOOST * probability)
        else:
            stats.uncertified_offered += 1
            if risky:
                probability *= RISKY_DROP_FACTOR
        if self._rng.random() >= probability:
            return True
        stats.shed_events_total += 1
        if worst is SHED_SAFE:
            stats.shed_safe_total += 1
            if certified:
                stats.certified_total += 1
        else:
            stats.shed_sampled_total += 1
            stats.uncertified_shed += 1
        return False

    # -- reporting ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot for the serving layer's STATS frame."""
        return {
            "policy": self.policy,
            "engaged": self.engaged,
            "drop_rate": round(self.drop_rate, 6),
            "latency_target": self.latency_target,
            "pressure": self.assessor.to_dict(),
            "stats": self.stats.to_dict(),
        }

    def describe(self) -> str:
        """Short rendering for the monitor header / ``cepr top``."""
        state = "engaged" if self.engaged else "standby"
        return (
            f"shed[{self.policy}]={state} "
            f"dropped={self.stats.shed_events_total} "
            f"recall~{self.recall_estimate:.2f}"
        )


def controller_to_dict(
    controller: "ShedController | None",
    extra_stats: Iterable[ShedStats] = (),
) -> dict[str, Any] | None:
    """Fleet-aware STATS rendering: fold worker-controller counters in."""
    if controller is None or controller.policy == "off":
        return None
    doc = controller.to_dict()
    merged = merge_shed_stats([controller.stats, *extra_stats])
    doc["stats"] = merged.to_dict()
    return doc
