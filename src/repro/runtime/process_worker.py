"""Worker-process entry point for :class:`~repro.runtime.process.ProcessShardedRunner`.

Runs as ``python -m repro.runtime.process_worker`` with the parent on
the other end of stdin/stdout.  The protocol is the pipe-frame codec
from :mod:`repro.runtime.process`:

``init``
    Build the shard :class:`~repro.runtime.engine.CEPREngine` (schema
    registry, sequencer mode, compiled edges) and register the queries
    shipped as canonical CEPR-QL text.  Replies ``ready``.
``events``
    One-way: decode and ``push_batch`` the batch.  Errors latch (like a
    thread-shard failure) and surface in the next barrier reply.
``sync`` / ``advance`` / ``flush``
    Barrier request/reply.  Runs the operation, then replies with a
    **state mirror**: per-query emission deltas (collectors drain into
    the frame), counters, open epochs, profile — everything the parent's
    proxies serve between barriers.
``snapshot`` / ``restore``
    Engine checkpointing.  ``restore`` clears collectors first (the
    engine contract expects restore into empty collectors), clears any
    latched failure, and replies with a fresh mirror.
``registry`` / ``explain``
    Introspection: shipped metrics-registry instrument states / one
    query's plan rendering.
``exit``
    Close the engine and leave; EOF on stdin does the same (a vanished
    parent must not leave orphan workers grinding on).

Frames flagged ``"safe"`` passed through the non-finite-float sentinel
encoding (:mod:`repro.events.jsonsafe`) and are desanitized on arrival;
every reply is sanitized, since engine state may carry ``inf``/``nan``.

File descriptor hygiene: the frame stream is a private ``dup`` of fd 1
taken at startup, after which fd 1 is redirected onto stderr — so any
stray ``print`` (user predicate code, a dependency) garbles a log line,
never the frame stream.
"""

from __future__ import annotations

import os
import sys
import traceback
from typing import Any, BinaryIO

from repro.engine.snapshot import decode_event
from repro.events.jsonsafe import desanitize, sanitize
from repro.events.schema import registry_from_dict
from repro.events.time import PreassignedSequencer
from repro.runtime.engine import CEPREngine
from repro.runtime.process import (
    encode_matcher_stats,
    encode_profile,
    encode_recorder,
    read_pipe_frame,
    write_pipe_frame,
)
from repro.runtime.sharded import _encode_emission
from repro.serve.protocol import ConnectionClosed


def _build_engine(doc: dict[str, Any]) -> CEPREngine:
    registry_spec = doc["registry"]
    max_lateness = doc["max_lateness"]
    engine = CEPREngine(
        registry=(
            None if registry_spec is None else registry_from_dict(registry_spec)
        ),
        strict_schema=bool(doc["strict_schema"]),
        enable_pruning=bool(doc["enable_pruning"]),
        strict_time=bool(doc["strict_time"]),
        lenient_errors=bool(doc["lenient_errors"]),
        max_lateness=None if max_lateness is None else float(max_lateness),
        sequencer=PreassignedSequencer() if doc["preassigned"] else None,
        sanitize=doc["sanitize"],
        compiled=bool(doc["compiled"]),
    )
    for item in doc["queries"]:
        engine.register_query(item["text"], name=item["name"])
    return engine


def _build_mirror(engine: CEPREngine) -> dict[str, Any]:
    """Drain collectors and snapshot every counter the parent proxies serve."""
    queries: dict[str, Any] = {}
    for handle in engine.queries():
        collector = handle.collector
        if collector is not None:
            delta = [_encode_emission(e) for e in collector.emissions]
            collector.emissions.clear()
        else:
            delta = []
        metrics = handle.metrics
        queries[handle.name] = {
            "emissions": delta,
            "metrics": {
                "events_routed": metrics.events_routed,
                "matches": metrics.matches,
                "emissions": metrics.emissions,
                "revisions": metrics.revisions,
                "latency": encode_recorder(metrics.latency),
            },
            "stats": encode_matcher_stats(handle.matcher.stats),
            "live_runs": handle.matcher.live_run_count,
            "pending": handle.matcher.pending_count,
            "open_epochs": sorted(handle.ranker.open_epochs()),
            "scoring_errors": handle.ranker.scoring_errors,
            "profile": encode_profile(handle.profile),
        }
    sanitizer = engine.sanitizer
    return {
        "events_pushed": engine.metrics.events_pushed,
        "last_event_ts": engine.metrics.last_event_ts,
        "shared": engine.shared_stats(),
        "sanitizer": None if sanitizer is None else dict(sanitizer.trips),
        "queries": queries,
    }


def _encode_registry_instruments(engine: CEPREngine) -> list[dict[str, Any]]:
    items: list[dict[str, Any]] = []
    for instrument in engine.metrics_registry().instruments():
        row: dict[str, Any] = {
            "kind": instrument.kind,
            "name": instrument.name,
            "help": instrument.help,
            "labels": dict(instrument.labels),
        }
        if instrument.kind == "histogram":
            row["recorder"] = encode_recorder(instrument.recorder)
        else:
            row["value"] = instrument.value
            if instrument.kind == "gauge":
                row["agg"] = instrument.agg
        items.append(row)
    return items


def _error_reply(exc: BaseException) -> dict[str, Any]:
    return {
        "op": "error",
        "etype": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


def serve(frames_in: BinaryIO, frames_out: BinaryIO) -> int:
    """The worker loop; returns the process exit code."""
    engine: CEPREngine | None = None
    #: latched event-path failure, reported at the next barrier reply
    #: (mirrors the thread-shard ``_Worker.failure`` discipline).
    failure: BaseException | None = None

    def reply(doc: dict[str, Any]) -> None:
        write_pipe_frame(frames_out, sanitize(doc))

    while True:
        try:
            doc = read_pipe_frame(frames_in)
        except ConnectionClosed:
            # Parent is gone: exit quietly rather than orphan-grind.
            if engine is not None:
                try:
                    engine.close()
                except Exception:
                    pass
            return 0
        if doc.get("safe"):
            doc = desanitize(doc)
        op = doc["op"]
        try:
            if op == "init":
                engine = _build_engine(doc)
                reply({"op": "ready", "pid": os.getpid()})
            elif op == "events":
                if engine is not None and failure is None:
                    try:
                        engine.push_batch(
                            [decode_event(state) for state in doc["events"]]
                        )
                    except BaseException as exc:
                        failure = exc
            elif op in ("sync", "advance", "flush"):
                assert engine is not None
                if failure is None:
                    try:
                        if op == "advance":
                            engine.advance_time(float(doc["ts"]))
                        elif op == "flush":
                            engine.flush()
                    except BaseException as exc:
                        failure = exc
                if failure is not None:
                    reply(_error_reply(failure))
                else:
                    reply({"op": "ack", "mirror": _build_mirror(engine)})
            elif op == "snapshot":
                assert engine is not None
                if failure is not None:
                    reply(_error_reply(failure))
                else:
                    reply({"op": "ack", "state": engine.snapshot()})
            elif op == "restore":
                assert engine is not None
                for handle in engine.queries():
                    if handle.collector is not None:
                        handle.collector.emissions.clear()
                engine.restore(doc["state"])
                failure = None
                reply({"op": "ack", "mirror": _build_mirror(engine)})
            elif op == "registry":
                assert engine is not None
                reply(
                    {
                        "op": "ack",
                        "instruments": _encode_registry_instruments(engine),
                    }
                )
            elif op == "explain":
                assert engine is not None
                reply(
                    {
                        "op": "ack",
                        "text": engine.query(doc["query"]).explain(),
                    }
                )
            elif op == "exit":
                if engine is not None:
                    try:
                        engine.close()
                    except Exception:
                        pass
                return 0
            else:
                reply({"op": "error", "etype": "ValueError",
                       "message": f"unknown worker op {op!r}", "traceback": ""})
        except BrokenPipeError:
            return 1
        except BaseException as exc:
            try:
                reply(_error_reply(exc))
            except Exception:
                return 1
    return 0  # pragma: no cover - loop only exits via return


def main() -> int:
    # Claim the frame stream, then point fd 1 (and sys.stdout) at stderr
    # so stray prints can never corrupt framing.
    frames_out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    frames_in = sys.stdin.buffer
    return serve(frames_in, frames_out)


if __name__ == "__main__":
    raise SystemExit(main())
