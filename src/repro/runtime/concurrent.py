"""Threaded ingestion: feed an engine from a producer thread safely.

``CEPREngine`` is single-threaded by design (one event at a time through
the operator chain).  :class:`ThreadedEngineRunner` puts that engine behind
a bounded queue: producers call :meth:`submit` from any thread, a single
consumer thread drains the queue into the engine, and emissions fan out to
a callback.  The bounded queue gives natural backpressure — a slow query
slows producers instead of growing memory without bound.

This formalises what the live-monitor demo does ad hoc, with clean
shutdown semantics: :meth:`stop` processes everything already queued,
flushes the engine, and joins the thread.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

from repro.events.event import Event
from repro.observability.registry import MetricsRegistry
from repro.ranking.emission import Emission
from repro.runtime.engine import CEPREngine

_STOP = object()


class ThreadedEngineRunner:
    """Runs a :class:`CEPREngine` on its own consumer thread.

    Parameters
    ----------
    engine:
        The engine to drive; after :meth:`start` it must only be touched
        through this runner.
    on_emission:
        Optional callback invoked (on the consumer thread) for every
        emission produced.
    max_queue:
        Bound of the ingest queue; :meth:`submit` blocks when full.
    """

    def __init__(
        self,
        engine: CEPREngine,
        on_emission: Callable[[Emission], None] | None = None,
        max_queue: int = 10_000,
    ) -> None:
        self.engine = engine
        self.on_emission = on_emission
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._thread: threading.Thread | None = None
        self._started = False
        self._stopped = threading.Event()
        #: exception that killed the consumer thread, if any.
        self.failure: BaseException | None = None
        self.events_submitted = 0
        self.events_processed = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ThreadedEngineRunner":
        if self._started:
            raise RuntimeError("runner already started")
        self._started = True
        self._thread = threading.Thread(target=self._consume, daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 30.0) -> None:
        """Drain the queue, flush the engine, and join the thread."""
        if not self._started or self._stopped.is_set():
            return
        self._queue.put(_STOP)
        assert self._thread is not None
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError("consumer thread did not drain in time")
        if self.failure is not None:
            raise RuntimeError("engine thread failed") from self.failure

    def __enter__(self) -> "ThreadedEngineRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- producing ----------------------------------------------------------------

    def submit(self, event: Event, timeout: float | None = None) -> None:
        """Enqueue one event (blocks when the queue is full)."""
        if self._stopped.is_set():
            raise RuntimeError("runner is stopped")
        if self.failure is not None:
            raise RuntimeError("engine thread failed") from self.failure
        self._queue.put(event, timeout=timeout)
        self.events_submitted += 1

    def submit_all(self, events) -> int:
        count = 0
        for event in events:
            self.submit(event)
            count += 1
        return count

    @property
    def backlog(self) -> int:
        """Events queued but not yet processed (approximate)."""
        return self._queue.qsize()

    # -- observability -------------------------------------------------------------

    def metrics_registry(self) -> MetricsRegistry:
        """The engine's registry plus this runner's queue instruments."""
        registry = self.engine.metrics_registry()
        registry.counter(
            "runner_events_submitted_total",
            "Events accepted into the ingest queue",
            fn=lambda: self.events_submitted,
        )
        registry.counter(
            "runner_events_processed_total",
            "Events drained from the queue into the engine",
            fn=lambda: self.events_processed,
        )
        registry.gauge(
            "runner_backlog",
            "Events queued, not yet processed",
            fn=lambda: self.backlog,
        )
        return registry

    # -- consuming ----------------------------------------------------------------

    def _consume(self) -> None:
        try:
            while True:
                item = self._queue.get()
                if item is _STOP:
                    break
                emissions = self.engine.push(item)
                self.events_processed += 1
                if self.on_emission is not None:
                    for emission in emissions:
                        self.on_emission(emission)
            final = self.engine.flush()
            if self.on_emission is not None:
                for emission in final:
                    self.on_emission(emission)
        except BaseException as exc:  # surfaced to producers via .failure
            self.failure = exc
        finally:
            self._stopped.set()
            # Unblock producers stuck in a full-queue put: anything
            # submitted behind the stop sentinel (or a failure) is
            # discarded, never left to wedge its producer forever.
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
