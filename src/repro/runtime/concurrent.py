"""Threaded ingestion: feed an engine from a producer thread safely.

``CEPREngine`` is single-threaded by design (one event at a time through
the operator chain).  :class:`ThreadedEngineRunner` puts that engine behind
a bounded queue: producers call :meth:`submit` from any thread, a single
consumer thread drains the queue into the engine in ``push_batch`` batches,
and emissions fan out to a callback.  The bounded queue gives natural
backpressure — a slow query slows producers instead of growing memory
without bound.

Beyond ingestion, the runner exposes the control surface the serving layer
(:mod:`repro.serve`) needs to drive an engine it never touches directly:

* :meth:`sync` — a read-your-writes barrier (returns once everything
  submitted before it has been processed);
* :meth:`advance_time` — heartbeat injection through the queue, so
  watermarks serialise with events;
* :meth:`pause` — a context manager that parks the consumer at a safe
  point and yields the engine for exclusive access (used by
  :meth:`snapshot`/:meth:`restore` and dynamic query registration);
* :meth:`subscribe`/:meth:`register_query`/:meth:`unregister_query` —
  pause-protected passthroughs to the engine's subscription API.

Shutdown semantics are unchanged: :meth:`stop` processes everything
already queued, flushes the engine, and joins the thread.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.events.event import Event
from repro.language.ast_nodes import Query
from repro.observability.pressure import PressureAssessor, PressureSample
from repro.observability.registry import MetricsRegistry
from repro.ranking.emission import Emission, EmissionKind
from repro.runtime._construction import warn_direct_construction
from repro.runtime.engine import CEPREngine
from repro.runtime.query import RegisteredQuery
from repro.runtime.shedding import ShedController, controller_to_dict
from repro.runtime.sinks import SinkLike, Subscription
from repro.sanitize.core import release_affinity


class ThreadedEngineRunner:
    """Runs a :class:`CEPREngine` on its own consumer thread.

    Parameters
    ----------
    engine:
        The engine to drive; after :meth:`start` it must only be touched
        through this runner (:meth:`pause` grants temporary exclusive
        access when direct manipulation is unavoidable).
    on_emission:
        Optional callback invoked (on the consumer thread) for every
        emission produced.
    max_queue:
        Bound of the ingest queue; :meth:`submit` blocks when full.
    batch_size:
        How many queued events the consumer greedily drains into one
        ``push_batch`` call (amortises per-push overhead under load).
    shed_policy:
        ``"off"`` (default), ``"exact"``, or ``"adaptive"`` — see
        :mod:`repro.runtime.shedding` and docs/SHEDDING.md.  Off attaches
        nothing to the engine, so the hot path stays unchanged.
    latency_target:
        Ingest-lag budget in seconds the shedding controller steers
        toward (only meaningful with a policy other than ``"off"``).
    shed_controller:
        Pre-built :class:`~repro.runtime.shedding.ShedController`
        override (tests inject forced/engaged controllers); when given,
        ``shed_policy``/``latency_target`` are ignored.
    """

    def __init__(
        self,
        engine: CEPREngine,
        on_emission: Callable[[Emission], None] | None = None,
        max_queue: int = 10_000,
        batch_size: int = 256,
        shed_policy: str = "off",
        latency_target: float | None = None,
        shed_controller: ShedController | None = None,
    ) -> None:
        warn_direct_construction(type(self).__name__)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.engine = engine
        self.on_emission = on_emission
        self.batch_size = batch_size
        self.max_queue = max_queue
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._thread: threading.Thread | None = None
        self._started = False
        self._stopped = threading.Event()
        #: exception that killed the consumer thread, if any.
        self.failure: BaseException | None = None
        self.events_submitted = 0
        self.events_processed = 0
        #: deepest the ingest queue has ever been (pressure signal).
        self.queue_high_water = 0
        #: submit-side event-time watermark: highest event timestamp
        #: accepted into the queue.  Compared against the engine's
        #: processed watermark to measure ingest lag in event-time units.
        self.last_submitted_ts: float | None = None
        #: smoothed composite pressure with ok/overloaded hysteresis.
        self.pressure_assessor = PressureAssessor()
        #: optional ``() -> (depth, capacity)`` hook the serving layer
        #: installs so default pressure readings include its fullest
        #: subscriber outbound queue.
        self.subscriber_pressure_provider: (
            Callable[[], tuple[int, int]] | None
        ) = None
        if shed_controller is None:
            shed_controller = ShedController(
                policy=shed_policy,
                **(
                    {}
                    if latency_target is None
                    else {"latency_target": latency_target}
                ),
            )
        #: load-shedding state machine (policy "off" is inert).
        self.shed_controller = shed_controller
        if shed_controller.policy != "off":
            # Exact-mode elides run inside the dispatch loop; the checker
            # hook re-derives every certificate when CEPRSan is armed.
            engine.shed_controller = shed_controller
            shed_controller.invariant_checker = getattr(
                engine, "_invariants", None
            )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ThreadedEngineRunner":
        if self._started:
            raise RuntimeError("runner already started")
        self._started = True
        # Sanitizer handoff: from here on the consumer thread owns the
        # engine (thread-affinity tracking re-claims on first mutation).
        release_affinity(self.engine)
        self._thread = threading.Thread(target=self._consume, daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 30.0) -> None:
        """Drain the queue, flush the engine, and join the thread."""
        if not self._started or self._stopped.is_set():
            return
        self._queue.put(("stop",))
        assert self._thread is not None
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError("consumer thread did not drain in time")
        if self.failure is not None:
            raise RuntimeError("engine thread failed") from self.failure

    def close(self) -> None:
        """Terminal teardown: stop (draining and flushing), then close sinks."""
        self.stop()
        self._fan_out(self.engine.close())

    def __enter__(self) -> "ThreadedEngineRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- producing ----------------------------------------------------------------

    def submit(self, event: Event, timeout: float | None = None) -> None:
        """Enqueue one event (blocks when the queue is full)."""
        self._ensure_running()
        self._queue.put(("event", event), timeout=timeout)
        self.events_submitted += 1
        if (
            self.last_submitted_ts is None
            or event.timestamp > self.last_submitted_ts
        ):
            self.last_submitted_ts = event.timestamp
        depth = self._queue.qsize()
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    def submit_all(self, events) -> int:
        count = 0
        for event in events:
            self.submit(event)
            count += 1
        return count

    @property
    def backlog(self) -> int:
        """Events queued but not yet processed (approximate)."""
        return self._queue.qsize()

    def _ensure_running(self) -> None:
        if self.failure is not None:
            raise RuntimeError("engine thread failed") from self.failure
        if not self._started or self._stopped.is_set():
            raise RuntimeError("runner is stopped")

    def _release_if_dead(self) -> None:
        """Cover the put-after-death race.

        ``_ensure_running`` then ``put`` is not atomic: the consumer may
        fail and finish its terminal queue drain in between, leaving the
        op we just queued with no one to service it.  When that happens
        the drain below releases its waiters instead of letting the
        caller block forever.
        """
        if self._stopped.is_set():
            self._drain_queue()

    def _drain_queue(self) -> None:
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                return
            for part in leftover[1:]:
                if isinstance(part, threading.Event):
                    part.set()

    # -- control barriers ----------------------------------------------------------

    def sync(self, timeout: float | None = None) -> None:
        """Barrier: return once everything submitted before it is processed.

        Gives callers read-your-writes over engine results without
        stopping the runner (the serving layer's ``sync`` op maps here).
        """
        self._ensure_running()
        ack = threading.Event()
        self._queue.put(("sync", ack))
        self._release_if_dead()
        if not ack.wait(timeout=timeout):
            raise TimeoutError("sync barrier did not drain in time")
        if self.failure is not None:
            raise RuntimeError("engine thread failed") from self.failure

    def advance_time(self, timestamp: float, timeout: float | None = None) -> None:
        """Inject a heartbeat, serialised behind already-queued events.

        Emissions it releases fan out to ``on_emission`` on the consumer
        thread, like every other emission.
        """
        self._ensure_running()
        ack = threading.Event()
        self._queue.put(("advance", timestamp, ack))
        self._release_if_dead()
        if not ack.wait(timeout=timeout):
            raise TimeoutError("advance barrier did not drain in time")
        if self.failure is not None:
            raise RuntimeError("engine thread failed") from self.failure

    def flush(self) -> None:
        """End-of-stream flush without stopping the runner.

        Parks the consumer at a safe point, flushes the engine, and fans
        the released emissions out to ``on_emission`` (on the calling
        thread — same delivery point as the sharded runner's barriers).
        Idempotent; :meth:`stop` still flushes for callers that never
        call this.
        """
        if self._started and not self._stopped.is_set():
            with self.pause() as engine:
                self._fan_out(engine.flush())
        else:
            self._fan_out(self.engine.flush())

    @contextmanager
    def pause(self) -> Iterator[CEPREngine]:
        """Park the consumer at a safe point and yield the engine.

        While the ``with`` body runs, the consumer thread is blocked
        between events, so the engine may be touched directly (snapshot,
        restore, query registration).  Events submitted meanwhile queue up
        and are processed after resume.
        """
        self._ensure_running()
        entered = threading.Event()
        resume = threading.Event()
        self._queue.put(("pause", entered, resume))
        self._release_if_dead()
        entered.wait()
        try:
            if self.failure is not None:
                raise RuntimeError("engine thread failed") from self.failure
            yield self.engine
        finally:
            resume.set()

    # -- engine passthroughs ---------------------------------------------------------

    def _with_engine(self, fn: Callable[[CEPREngine], object]) -> object:
        if self._started and not self._stopped.is_set():
            with self.pause() as engine:
                return fn(engine)
        return fn(self.engine)

    def subscribe(
        self,
        query_name: str,
        target: SinkLike,
        kinds: EmissionKind | str | list | tuple | None = None,
    ) -> Subscription:
        """Attach a subscription to one query, safely while running."""
        result = self._with_engine(
            lambda engine: engine.subscribe(query_name, target, kinds=kinds)
        )
        assert isinstance(result, Subscription)
        return result

    def register_query(
        self, query: str | Query, name: str | None = None
    ) -> RegisteredQuery:
        """Register a query, pausing the consumer if already running."""
        result = self._with_engine(
            lambda engine: engine.register_query(query, name=name)
        )
        assert isinstance(result, RegisteredQuery)
        return result

    def unregister_query(self, name: str) -> None:
        """Remove a query, pausing the consumer if already running."""
        self._with_engine(lambda engine: engine.unregister_query(name))

    # -- checkpointing ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Consistent engine snapshot taken at a pause point."""
        with self.pause() as engine:
            return engine.snapshot()

    def restore(self, state: dict) -> None:
        """Load a snapshot into the (paused) engine."""
        with self.pause() as engine:
            engine.restore(state)

    # -- observability -------------------------------------------------------------

    @property
    def ingest_lag_seconds(self) -> float:
        """Event-time watermark skew: submitted minus processed watermark.

        Zero while the consumer keeps up (or before the first event);
        grows in event-time units when a backlog builds.
        """
        submitted = self.last_submitted_ts
        processed = self.engine.metrics.last_event_ts
        if submitted is None or processed is None:
            # Nothing submitted, or nothing processed yet — skew between
            # the watermarks is not yet defined.
            return 0.0
        return max(0.0, submitted - processed)

    def pressure_sample(
        self, subscriber_depth: int = 0, subscriber_capacity: int = 0
    ) -> PressureSample:
        """Instantaneous pressure reading over this runner's queue.

        The serving layer passes its fullest subscriber outbound queue so
        the composite score sees client-side backpressure too — either
        explicitly, or by installing :attr:`subscriber_pressure_provider`
        (consulted when the arguments are left at their defaults) so the
        registry's ``pressure`` gauge sees it on every export.
        """
        if (
            not subscriber_capacity
            and self.subscriber_pressure_provider is not None
        ):
            subscriber_depth, subscriber_capacity = (
                self.subscriber_pressure_provider()
            )
        return PressureSample(
            ingest_lag_seconds=self.ingest_lag_seconds,
            queue_depth=self.backlog,
            queue_capacity=self.max_queue,
            queue_high_water=self.queue_high_water,
            subscriber_depth=subscriber_depth,
            subscriber_capacity=subscriber_capacity,
        )

    def pressure(
        self, subscriber_depth: int = 0, subscriber_capacity: int = 0
    ) -> PressureAssessor:
        """Fold a fresh sample into the assessor and return it."""
        self.pressure_assessor.observe(
            self.pressure_sample(subscriber_depth, subscriber_capacity)
        )
        return self.pressure_assessor

    def cost_accounts(self):
        """Per-query cost accounts (snapshot; counters may still move)."""
        return self.engine.cost_accounts()

    # Monitor passthroughs: a runner can stand in for its engine as a
    # monitor source, which is how `cepr stats --watch` surfaces queue
    # pressure (the bare engine has no ingest queue to be pressured).
    def query(self, name: str) -> RegisteredQuery:
        """Look up a registered query handle by name."""
        return self.engine.query(name)

    def queries(self):
        return self.engine.queries()

    def stats_by_query(self):
        """Per-query counter dict (passthrough to the engine)."""
        return self.engine.stats_by_query()

    @property
    def metrics(self):
        return self.engine.metrics

    def metrics_registry(self) -> MetricsRegistry:
        """The engine's registry plus this runner's queue instruments."""
        registry = self.engine.metrics_registry()
        registry.counter(
            "runner_events_submitted_total",
            "Events accepted into the ingest queue",
            fn=lambda: self.events_submitted,
        )
        registry.counter(
            "runner_events_processed_total",
            "Events drained from the queue into the engine",
            fn=lambda: self.events_processed,
        )
        registry.gauge(
            "runner_backlog",
            "Events queued, not yet processed",
            fn=lambda: self.backlog,
        )
        registry.gauge(
            "runner_queue_capacity",
            "Bound of the ingest queue",
            fn=lambda: self.max_queue,
        )
        registry.gauge(
            "runner_queue_high_water",
            "Deepest the ingest queue has ever been",
            fn=lambda: self.queue_high_water,
            agg="max",
        )
        registry.gauge(
            "runner_ingest_lag_seconds",
            "Event-time watermark skew between submit and processing",
            fn=lambda: self.ingest_lag_seconds,
            agg="max",
        )
        registry.gauge(
            "pressure",
            "Smoothed composite pressure score (0..1)",
            fn=lambda: self.pressure().level,
            agg="max",
        )
        controller = self.shed_controller
        if controller.policy != "off":
            registry.counter(
                "shed_events_total",
                "Events dropped/elided by the load-shedding controller",
                fn=lambda: controller.stats.shed_events_total,
            )
            registry.counter(
                "shed_safe_total",
                "Sheds provably unable to change output (inert or certified)",
                fn=lambda: controller.stats.shed_safe_total,
            )
            registry.gauge(
                "shed_drop_rate",
                "Current adaptive drop probability (0..1)",
                fn=lambda: controller.drop_rate,
                agg="max",
            )
            registry.gauge(
                "shed_recall_estimate",
                "Measured lower-bound recall of the shedded stream",
                fn=lambda: controller.recall_estimate,
            )
            registry.gauge(
                "shed_engaged",
                "1 while the shedding controller is engaged",
                fn=lambda: 1.0 if controller.engaged else 0.0,
                agg="max",
            )
        return registry

    def shed_stats_dict(self) -> dict | None:
        """JSON-safe shedding snapshot for STATS frames (None when off)."""
        return controller_to_dict(self.shed_controller)

    # -- consuming ----------------------------------------------------------------

    def _fan_out(self, emissions: list[Emission]) -> None:
        if self.on_emission is not None:
            for emission in emissions:
                self.on_emission(emission)

    def _consume(self) -> None:
        pending_op: tuple | None = None
        item: tuple | None = None
        try:
            while True:
                item = pending_op if pending_op is not None else self._queue.get()
                pending_op = None
                kind = item[0]
                if kind == "event":
                    # Batched hot path: greedily drain queued events so the
                    # engine amortises per-call overhead via push_batch.
                    batch = [item[1]]
                    while len(batch) < self.batch_size:
                        try:
                            nxt = self._queue.get_nowait()
                        except queue.Empty:
                            break
                        if nxt[0] == "event":
                            batch.append(nxt[1])
                        else:
                            pending_op = nxt
                            break
                    drained = len(batch)
                    controller = self.shed_controller
                    if controller.adaptive_active:
                        # Lossy pre-engine drops: the seq hint places the
                        # not-yet-sequenced events in the right count-window
                        # epoch for the bound probes (advisory only).
                        queries = self.engine.queries()
                        seq_hint = self.engine.metrics.events_pushed
                        batch = [
                            event
                            for event in batch
                            if controller.admit(event, queries, seq_hint=seq_hint)
                        ]
                    if batch:
                        emissions = self.engine.push_batch(batch)
                        self._fan_out(emissions)
                    self.events_processed += drained
                    if controller.policy != "off":
                        # Per-batch control tick, on the consumer thread —
                        # the controller owns a private assessor, so this
                        # never races the registry's pressure gauge.
                        controller.control(
                            self.pressure_sample(), self.ingest_lag_seconds
                        )
                    continue
                if kind == "stop":
                    break
                if kind == "pause":
                    # Affinity handoff both ways across the pause barrier:
                    # the pausing thread owns the engine inside the with
                    # body, then ownership returns here on resume.
                    release_affinity(self.engine)
                    item[1].set()  # caller owns the engine now
                    item[2].wait()  # ...until it resumes us
                    release_affinity(self.engine)
                    continue
                if kind == "sync":
                    item[1].set()
                    continue
                if kind == "advance":
                    self._fan_out(self.engine.advance_time(item[1]))
                    item[2].set()
                    continue
                raise AssertionError(f"unknown control op {kind!r}")
            final = self.engine.flush()
            self._fan_out(final)
        except BaseException as exc:  # surfaced to producers via .failure
            self.failure = exc
        finally:
            self._stopped.set()
            # Unblock producers stuck in a full-queue put and release any
            # barrier waiters queued behind the stop sentinel (or a
            # failure) — nothing may be left to wedge its caller forever.
            # That includes ops already pulled OUT of the queue: the op
            # being processed when the engine raised (`item`) and one the
            # greedy batch drain set aside (`pending_op`).
            for op in (item, pending_op):
                if op is not None:
                    for part in op[1:]:
                        if isinstance(part, threading.Event):
                            part.set()
            self._drain_queue()
