"""The CEPR engine facade — the main public entry point.

>>> from repro import CEPREngine, Event
>>> engine = CEPREngine()
>>> query = engine.register_query('''
...     PATTERN SEQ(Buy b, Sell s)
...     WHERE b.symbol == s.symbol AND s.price > b.price
...     WITHIN 50 EVENTS
...     RANK BY s.price - b.price DESC
...     LIMIT 3
... ''')
>>> _ = engine.push(Event("Buy", 1.0, symbol="ACME", price=10.0))
>>> _ = engine.push(Event("Sell", 2.0, symbol="ACME", price=14.0))
>>> _ = engine.flush()
>>> [m.rank_values for m in query.final_ranking()]
[(4.0,)]
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.events.time import LatenessBuffer, SequenceAssigner
from repro.language.ast_nodes import Query
from repro.language.errors import CEPRSemanticError
from repro.language.parser import parse_query
from repro.language.semantics import analyze
from repro.observability.cost import CostAccount
from repro.observability.flightrec import current as flightrec_current
from repro.observability.profiling import StageProfile
from repro.observability.registry import MetricsRegistry
from repro.observability.tracing import (
    EmissionTrace,
    Tracer,
    build_emission_trace,
    tracing_enabled,
)
from repro.ranking.emission import Emission
from repro.runtime.metrics import EngineMetrics
from repro.runtime.query import RegisteredQuery
from repro.runtime.router import EventRouter, SharedExecutionIndex
from repro.runtime.sinks import SinkLike, Subscription


def snapshot_lateness(buffer: LatenessBuffer) -> dict:
    """JSON-safe snapshot of a lateness buffer (for checkpoints)."""
    from repro.engine.snapshot import encode_event

    return {
        "heap": [
            [ts, counter, encode_event(event)]
            for ts, counter, event in buffer._heap
        ],
        "counter": buffer._counter,
        "max_seen": buffer._max_seen,
        "last_released": buffer._last_released,
        "late_drops": buffer.late_drops,
    }


def restore_lateness(buffer: LatenessBuffer, state: dict) -> None:
    """Load a :func:`snapshot_lateness` state into ``buffer``."""
    from repro.engine.snapshot import decode_event

    buffer._heap = [
        (float(ts), int(counter), decode_event(event))
        for ts, counter, event in state["heap"]
    ]
    heapq.heapify(buffer._heap)
    buffer._counter = int(state["counter"])
    buffer._max_seen = float(state["max_seen"])
    buffer._last_released = float(state["last_released"])
    buffer.late_drops = int(state["late_drops"])


class CEPREngine:
    """A multi-query complex-event-processing engine with ranking support.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.events.schema.SchemaRegistry`.  Declared
        schemas enable event validation and — through attribute domains —
        score-bound pruning.
    strict_schema:
        When true, events whose type has no registered schema are rejected.
    enable_pruning:
        Master switch for score-bound pruning (per-query conditions still
        apply: ``RANK BY`` + ``LIMIT`` + tumbling emission).  The ablation
        benchmarks flip this.
    strict_time:
        When true, out-of-order timestamps raise instead of being counted.
    lenient_errors:
        When true, a predicate or rank key that fails to evaluate over
        dirty data (missing attribute, type mismatch, division by zero)
        makes that run/match fail quietly — counted in the query's matcher
        stats — instead of raising out of ``push``.
    max_lateness:
        When set, ingested events are reordered through a
        :class:`~repro.events.time.LatenessBuffer` with this bound (in
        stream-time seconds) before matching, so bounded out-of-order
        feeds are handled correctly at the cost of that much latency.
        Events violating the bound are dropped (see
        ``engine.lateness_buffer.late_drops``).
    max_derivation_depth:
        Bound on YIELD cascades: an event derived from an event derived
        from ... more than this many levels deep raises (indirect feedback
        loop).  Direct self-feedback is rejected at registration.
    sequencer:
        Optional :class:`~repro.events.time.SequenceAssigner` override.
        The sharded runtime passes a
        :class:`~repro.events.time.PreassignedSequencer` so shard-local
        engines keep the global sequence numbers stamped at dispatch
        instead of renumbering their subsequence of the stream.
    tracing:
        ``True`` attaches a span :class:`~repro.observability.tracing.
        Tracer` to every registered query; ``False`` never does; ``None``
        (default) follows the module-level switch
        (:func:`~repro.observability.tracing.enable_tracing`) at
        construction time.  Flip at runtime with :meth:`set_tracing`.
    enable_profiling:
        Per-stage (match/rank/emit) wall-time accounting on every query
        (two extra clock reads per event).  On by default; the
        observability overhead benchmark's baseline turns it off.
    shared_execution:
        Cross-query sharing (on by default; see docs/SHARED_EXECUTION.md):
        distinct self-contained predicates are evaluated once per event no
        matter how many queries anchor them, queries with a common pattern
        head share NFA prefix states, and queries provably unaffected by
        an event are skipped entirely.  Output is byte-identical either
        way — the differential suite enforces it — so turning this off is
        only interesting for benchmarks (the independent baseline).
    sanitize:
        Attach the CEPRSan invariant sanitizer (see docs/SANITIZER.md):
        hot-path checks for ranking order, score-bound soundness, matcher
        coherence, sequence monotonicity, shared-index refcounts,
        snapshot round-trips, and cross-thread mutation.  ``None``
        (default) follows the ``CEPR_SANITIZE`` environment variable;
        the instrumentation is attached at construction only, so a plain
        engine carries zero sanitizer cost.
    compiled:
        Hot-path edge compilation (on by default): every NFA edge's
        predicate chain — shared-memo routing, context construction,
        evaluation, lenient error accounting — is fused into one closure
        at query compile time, replacing per-predicate interpreter
        dispatch.  Byte-identical output either way (the differential
        suite flips it); ``False`` is the interpreted ablation baseline.
    """

    def __init__(
        self,
        registry: SchemaRegistry | None = None,
        strict_schema: bool = False,
        enable_pruning: bool = True,
        strict_time: bool = False,
        lenient_errors: bool = False,
        max_lateness: float | None = None,
        max_derivation_depth: int = 16,
        sequencer: SequenceAssigner | None = None,
        tracing: bool | None = None,
        enable_profiling: bool = True,
        shared_execution: bool = True,
        sanitize: bool | None = None,
        compiled: bool = True,
    ) -> None:
        self.registry = registry
        self.strict_schema = strict_schema
        self.enable_pruning = enable_pruning
        self.lenient_errors = lenient_errors
        self.enable_profiling = enable_profiling
        #: hot-path edge compilation (fused per-edge closures in the
        #: matcher); ``False`` keeps the per-predicate interpreter paths —
        #: the differential suites and the E17 ablation flip this.
        self.compiled = compiled
        self.lateness_buffer = (
            LatenessBuffer(max_lateness) if max_lateness is not None else None
        )
        self.max_derivation_depth = max_derivation_depth
        #: total derived (YIELD) events processed.
        self.derived_events = 0
        self._sequencer = sequencer or SequenceAssigner(strict=strict_time)
        #: cross-query predicate index / prefix pool (None = independent).
        self.shared: SharedExecutionIndex | None = (
            SharedExecutionIndex() if shared_execution else None
        )
        self._router = EventRouter(shared=self.shared)
        self._queries: dict[str, RegisteredQuery] = {}
        self.metrics = EngineMetrics()
        want_tracing = tracing_enabled() if tracing is None else tracing
        self.tracer: Tracer | None = Tracer() if want_tracing else None
        self._auto_name_counter = 0
        self._flushed = False
        self._closed = False
        #: lazily built, engine-owned live registry (see metrics_registry).
        self._registry_view: MetricsRegistry | None = None
        #: black-box flight recorder, captured once at construction so the
        #: disabled hot-path cost is a single ``is None`` check per event.
        self._flightrec = flightrec_current()
        self._flightrec_clock = 0
        #: load-shedding controller, attached by the threaded/sharded
        #: runners (see repro.runtime.shedding); None on plain engines so
        #: the hot-path cost of the feature when off is one ``is None``
        #: check per dispatched event.
        self.shed_controller = None
        #: CEPRSan reporter; None on plain engines (the common case) so
        #: hot paths never even branch on it.
        self.sanitizer = None
        if sanitize is None:
            from repro.sanitize.core import sanitizer_enabled

            sanitize = sanitizer_enabled()
        if sanitize:
            from repro.sanitize import Sanitizer, attach_engine_sanitizer

            self.sanitizer = Sanitizer(scope="engine")
            self._invariants = attach_engine_sanitizer(self)

    # -- registration -------------------------------------------------------------

    def register_query(
        self,
        query: str | Query,
        name: str | None = None,
        collect_results: bool = True,
    ) -> RegisteredQuery:
        """Parse, analyse, compile, and activate one CEPR-QL query.

        ``query`` may be query text or an already-parsed AST.  The query
        name comes from (in priority order) the ``name`` argument, the
        query's ``NAME`` clause, or an auto-generated ``q<N>``.
        """
        ast = parse_query(query) if isinstance(query, str) else query
        analyzed = analyze(ast, self.registry)
        resolved_name = name or ast.name or self._next_auto_name()
        if resolved_name in self._queries:
            raise CEPRSemanticError(f"a query named {resolved_name!r} is already registered")
        registered = RegisteredQuery(
            resolved_name,
            analyzed,
            registry=self.registry,
            enable_pruning=self.enable_pruning,
            collect_results=collect_results,
            lenient_errors=self.lenient_errors,
            enable_profiling=self.enable_profiling,
            shared=self.shared,
            compiled=self.compiled,
        )
        registered.set_tracer(self.tracer)
        self._queries[resolved_name] = registered
        self._router.add(registered)
        if self._flightrec is not None:
            self._flightrec.record("register", query=resolved_name)
        return registered

    def unregister_query(self, name: str) -> None:
        """Deactivate and fully detach one query.

        Beyond removing it from the router, the query's sinks are closed
        and its per-query series are pruned from the engine's live metrics
        registry — otherwise ``cepr stats`` (and the serving layer's STATS
        frame) would keep reporting the dead query, and re-registering the
        same name would collide with the stale callback instruments.
        """
        registered = self._queries.pop(name, None)
        if registered is None:
            raise KeyError(f"no query named {name!r}")
        self._router.remove(registered)
        registered.set_tracer(None)
        registered.flush_sinks()
        registered.close_sinks()
        if self._registry_view is not None:
            self._registry_view.prune(query=name)
        if self._flightrec is not None:
            self._flightrec.record("unregister", query=name)

    def subscribe(
        self, query_name: str, target: SinkLike, kinds=None
    ) -> Subscription:
        """Subscribe to one query's emissions by name.

        Convenience wrapper over
        :meth:`~repro.runtime.query.RegisteredQuery.subscribe`; see there
        for the ``target``/``kinds`` contract.  Raises :class:`KeyError`
        for an unknown query name.
        """
        if query_name not in self._queries:
            raise KeyError(f"no query named {query_name!r}")
        return self._queries[query_name].subscribe(target, kinds=kinds)

    def query(self, name: str) -> RegisteredQuery:
        return self._queries[name]

    def queries(self) -> list[RegisteredQuery]:
        return list(self._queries.values())

    # -- ingestion -----------------------------------------------------------------

    def push(self, event: Event) -> list[Emission]:
        """Ingest one event; returns emissions triggered across all queries.

        With ``max_lateness`` configured, the event may be buffered for
        reordering and the returned emissions belong to whatever earlier
        events the new watermark released.
        """
        if self._flushed:
            raise RuntimeError("engine already flushed; create a new engine")
        if self.registry is not None:
            self.registry.validate(event, strict=self.strict_schema)
        if self.lateness_buffer is None:
            return self._dispatch(event)
        emissions: list[Emission] = []
        for released in self.lateness_buffer.push(event):
            emissions.extend(self._dispatch(released))
        return emissions

    def _dispatch(self, event: Event, depth: int = 0) -> list[Emission]:
        self._sequencer.assign(event)
        self.metrics.on_push(event.timestamp)
        shared = self.shared
        if shared is not None:
            # Arm the per-event memo: every routed query's predicate and
            # stage-gate checks for this event now share one evaluation.
            shared.begin_event(event)
        controller = self.shed_controller
        exact_shedding = controller is not None and controller.exact_active
        emissions: list[Emission] = []
        derived: list[Event] = []
        for registered in self._router.route(event):
            if shared is not None and registered.skip_if_inert(event):
                shared.events_gated += 1
                continue
            if exact_shedding:
                # Post-sequencing elide: the event keeps its place in the
                # stream (seq numbers, epoch boundaries, emission stamps
                # all unchanged) but skips the match path when a bound
                # certificate proves the output cannot differ.
                elided = registered.shed_if_certified(event, controller)
                if elided is not None:
                    emissions.extend(elided)
                    if registered.has_yield and elided:
                        derived.extend(registered.derive_events(elided))
                    continue
            query_emissions = registered.process(event)
            emissions.extend(query_emissions)
            if registered.has_yield and query_emissions:
                derived.extend(registered.derive_events(query_emissions))
        emissions.extend(self._cascade(derived, depth))
        if self._flightrec is not None:
            self._flightrec_tick(event, emissions)
        return emissions

    def _flightrec_tick(self, event: Event, emissions: list[Emission]) -> None:
        """Armed-recorder taps: coarse by design (budgeted overhead).

        Per event this is one counter increment; a frame is recorded only
        for emissions (rare relative to events) and every 256th event (a
        compact progress snapshot), so the armed cost stays inside the E19
        telemetry budget.
        """
        recorder = self._flightrec
        assert recorder is not None
        self._flightrec_clock += 1
        for emission in emissions:
            recorder.record(
                "emission",
                query=emission.ranking[0].query_name if emission.ranking else None,
                emission_kind=emission.kind.value,
                seq=emission.at_seq,
                matches=len(emission.ranking),
            )
        if self._flightrec_clock % 256 == 0:
            recorder.record(
                "engine",
                events=self.metrics.events_pushed,
                seq=event.seq,
                event_ts=event.timestamp,
                queries=len(self._queries),
            )

    def _cascade(self, derived: list[Event], depth: int) -> list[Emission]:
        """Feed YIELD-derived events back through the engine."""
        if not derived:
            return []
        if depth >= self.max_derivation_depth:
            raise RuntimeError(
                f"YIELD cascade exceeded max_derivation_depth="
                f"{self.max_derivation_depth}; check for feedback loops "
                f"between derived event types"
            )
        emissions: list[Emission] = []
        for event in derived:
            self.derived_events += 1
            emissions.extend(self._dispatch(event, depth + 1))
        return emissions

    def push_batch(self, events: Iterable[Event]) -> list[Emission]:
        """Ingest a batch of events through a hoisted hot path.

        Semantically identical to calling :meth:`push` per event, but the
        per-call guards and attribute lookups are hoisted out of the loop,
        which matters when a consumer thread drains a queue in chunks (the
        sharded runtime) or replays a recorded stream (CLI, backtests).
        """
        if self._flushed:
            raise RuntimeError("engine already flushed; create a new engine")
        emissions: list[Emission] = []
        extend = emissions.extend
        dispatch = self._dispatch
        registry = self.registry
        strict_schema = self.strict_schema
        buffer = self.lateness_buffer
        if buffer is None:
            if registry is None:
                for event in events:
                    extend(dispatch(event))
            else:
                for event in events:
                    registry.validate(event, strict=strict_schema)
                    extend(dispatch(event))
            return emissions
        for event in events:
            if registry is not None:
                registry.validate(event, strict=strict_schema)
            for released in buffer.push(event):
                extend(dispatch(released))
        return emissions

    def run(self, events: Iterable[Event], flush: bool = True) -> list[Emission]:
        """Push a whole stream; optionally flush at the end."""
        emissions = self.push_batch(events)
        if flush:
            emissions.extend(self.flush())
        return emissions

    def advance_time(self, timestamp: float) -> list[Emission]:
        """Heartbeat: declare that stream time has reached ``timestamp``.

        Live deployments call this on a wall-clock timer so quiet streams
        still close time windows, confirm trailing-negation pendings, and
        fire time-periodic emissions.  Has no effect on count-based scopes.
        """
        if self._flushed:
            raise RuntimeError("engine already flushed; create a new engine")
        emissions: list[Emission] = []
        derived: list[Event] = []
        for registered in self._queries.values():
            query_emissions = registered.advance_time(timestamp)
            emissions.extend(query_emissions)
            if registered.has_yield and query_emissions:
                derived.extend(registered.derive_events(query_emissions))
        emissions.extend(self._cascade(derived, depth=0))
        return emissions

    def flush(self) -> list[Emission]:
        """End of stream: release pending matches and held rankings.

        Also propagates the optional ``flush`` lifecycle call to every
        sink, so buffered sinks (JSONL files, network subscribers) are
        write-through at stream end.
        """
        if self._flushed:
            return []
        emissions: list[Emission] = []
        if self.lateness_buffer is not None:
            for released in self.lateness_buffer.flush():
                emissions.extend(self._dispatch(released))
        self._flushed = True
        for registered in self._queries.values():
            emissions.extend(registered.flush())
        for registered in self._queries.values():
            registered.flush_sinks()
        return emissions

    def close(self) -> list[Emission]:
        """Terminal teardown: flush (if not yet flushed), then close sinks.

        Returns whatever emissions the flush released.  Closing is
        idempotent; after it, sinks that own resources (file handles,
        sockets) have released them.
        """
        if self._closed:
            return []
        emissions = self.flush()
        self._closed = True
        for registered in self._queries.values():
            registered.close_sinks()
        return emissions

    # -- checkpointing ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe snapshot of all mutable engine state.

        Save with :class:`~repro.store.checkpoint.CheckpointStore`; load
        into a **fresh engine constructed the same way** (same options,
        same queries registered under the same names, in any order) with
        :meth:`restore`.  Replaying the event stream from the snapshot's
        position then continues the uninterrupted run exactly (see
        docs/RECOVERY.md).
        """
        state: dict = {
            "sequencer": self._sequencer.snapshot(),
            "derived_events": self.derived_events,
            "flushed": self._flushed,
            "events_pushed": self.metrics.events_pushed,
            "queries": {
                name: registered.snapshot()
                for name, registered in self._queries.items()
            },
        }
        state["lateness"] = (
            None
            if self.lateness_buffer is None
            else snapshot_lateness(self.lateness_buffer)
        )
        return state

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this freshly constructed engine.

        Every query named in the snapshot must already be registered (the
        compiled automatons and scorers are rebuilt from query text; only
        mutable state travels through the snapshot).
        """
        from repro.engine.snapshot import SnapshotFormatError

        snapshot_queries = state["queries"]
        missing = sorted(set(snapshot_queries) - set(self._queries))
        extra = sorted(set(self._queries) - set(snapshot_queries))
        if missing or extra:
            raise SnapshotFormatError(
                f"query set mismatch: snapshot has {sorted(snapshot_queries)}, "
                f"engine has {sorted(self._queries)}"
            )
        lateness_state = state["lateness"]
        if (lateness_state is None) != (self.lateness_buffer is None):
            raise SnapshotFormatError(
                "lateness-buffer configuration mismatch between snapshot "
                "and engine (max_lateness must match)"
            )
        self._sequencer.restore(state["sequencer"])
        self.derived_events = int(state["derived_events"])
        self._flushed = bool(state["flushed"])
        self.metrics.events_pushed = int(state["events_pushed"])
        if lateness_state is not None:
            assert self.lateness_buffer is not None
            restore_lateness(self.lateness_buffer, lateness_state)
        for name, query_state in snapshot_queries.items():
            self._queries[name].restore(query_state)

    # -- introspection --------------------------------------------------------------

    @property
    def events_pushed(self) -> int:
        return self.metrics.events_pushed

    def shared_stats(self) -> dict[str, int]:
        """Sharing counters: distinct predicates, evaluations saved, etc.

        Empty when the engine was built with ``shared_execution=False``.
        Surfaced by ``cepr stats``, the serving layer's STATS frame, and
        the multi-query benchmark.
        """
        return {} if self.shared is None else self.shared.counters()

    def stats_by_query(self) -> dict[str, dict[str, float]]:
        """Metrics snapshot per query, for the monitor and benchmarks."""
        snapshot: dict[str, dict[str, float]] = {}
        for name, registered in self._queries.items():
            row = registered.metrics.snapshot()
            matcher = registered.matcher.stats
            row.update(
                {
                    "runs_created": matcher.runs_created,
                    "runs_pruned": matcher.runs_pruned,
                    "peak_live_runs": matcher.peak_live_runs,
                    "live_runs": registered.matcher.live_run_count,
                    # Events that matched the query's types but carried no
                    # partition key: they are skipped, and silently losing
                    # them would mask upstream data problems.
                    "partition_skips": matcher.events_skipped_no_key,
                }
            )
            snapshot[name] = row
        return snapshot

    # -- observability ---------------------------------------------------------------

    def cost_accounts(self) -> dict[str, CostAccount]:
        """Per-query cost accounts, keyed by query name.

        Accounts are built from the live counters on every call — there is
        no parallel state to retire on :meth:`unregister_query`, so a dead
        query can never linger here (``cepr top`` rebuilds its ranking
        from this view each refresh).
        """
        return {
            name: CostAccount.from_query(registered)
            for name, registered in self._queries.items()
        }

    def set_tracing(self, enabled: bool) -> Tracer | None:
        """Attach (``True``) or detach (``False``) span tracing at runtime.

        Attaching keeps an existing tracer (and its history); detaching
        drops it.  Returns the active tracer, if any.
        """
        if enabled:
            if self.tracer is None:
                self.tracer = Tracer()
        else:
            self.tracer = None
        if self._registry_view is not None:
            # The live registry's trace instruments close over a specific
            # tracer; drop them so the next registration pass re-binds the
            # current one (or none).
            self._registry_view.prune(name="trace_spans_total")
            self._registry_view.prune(name="trace_spans_dropped_total")
        for registered in self._queries.values():
            registered.set_tracer(self.tracer)
        return self.tracer

    def trace(self, emission: Emission) -> EmissionTrace:
        """Full provenance of one emission this engine produced.

        Works without tracing enabled (match events and rank keys come from
        the emission itself), but the run-lifecycle competition tallies
        need the span history — enable tracing before the run for those.
        """
        query_name = (
            emission.ranking[0].query_name if emission.ranking else None
        )
        registered = (
            self._queries.get(query_name) if query_name is not None else None
        )
        return build_emission_trace(
            emission,
            analyzed=registered.analyzed if registered is not None else None,
            tracer=self.tracer,
            query=query_name,
        )

    def profiles_by_query(self) -> dict[str, StageProfile]:
        """Per-query stage profiles (empty when profiling is disabled)."""
        return {
            name: registered.profile
            for name, registered in self._queries.items()
            if registered.profile is not None
        }

    def metrics_registry(self) -> MetricsRegistry:
        """The engine's live, typed registry over its hot-path counters.

        Instruments are callback-backed views of the counters the hot path
        already maintains, so registration adds zero steady-state cost.
        The registry is **owned by the engine and lives as long as it
        does**: repeated calls return the same object, re-running the
        idempotent registration pass so queries (and sinks) added since
        the last call are picked up, and :meth:`unregister_query` prunes a
        dead query's series — long-running deployments (the serving layer)
        can export it repeatedly without accumulating stale entries.  The
        sharded runtime still merges per-shard registries into a fresh
        fleet view with
        :meth:`~repro.observability.registry.MetricsRegistry.absorb`.
        """
        registry = self._registry_view
        if registry is None:
            registry = self._registry_view = MetricsRegistry()
        metrics = self.metrics
        registry.counter(
            "events_pushed_total",
            "Events ingested by the engine",
            fn=lambda: metrics.events_pushed,
        )
        registry.counter(
            "derived_events_total",
            "YIELD-derived events fed back through the engine",
            fn=lambda: self.derived_events,
        )
        registry.gauge(
            "throughput_eps",
            "Lifetime ingest rate (events/second)",
            fn=lambda: metrics.throughput,
            agg="max",
        )
        registry.gauge(
            "recent_throughput_eps",
            "Sliding-window ingest rate (events/second)",
            fn=lambda: metrics.recent_throughput,
        )
        if self.lateness_buffer is not None:
            buffer = self.lateness_buffer
            registry.counter(
                "late_drops_total",
                "Events dropped for violating the lateness bound",
                fn=lambda: buffer.late_drops,
            )
        if self.shared is not None:
            shared = self.shared
            registry.gauge(
                "shared_distinct_predicates",
                "Distinct self-contained predicates in the shared index",
                fn=lambda: shared.distinct_predicates,
            )
            registry.gauge(
                "shared_prefix_entries",
                "Interned NFA prefix states across registered queries",
                fn=lambda: shared.prefix_entries,
            )
            registry.counter(
                "predicate_evals_saved_total",
                "Predicate evaluations answered from the shared memo",
                fn=lambda: shared.predicate_evals_saved,
            )
            registry.counter(
                "predicate_evals_performed_total",
                "Predicate evaluations performed through the shared index",
                fn=lambda: shared.predicate_evals_performed,
            )
            registry.counter(
                "prefix_states_shared_total",
                "Compiled stages reused from the prefix intern pool",
                fn=lambda: shared.prefix_states_shared,
            )
            registry.counter(
                "events_gated_total",
                "Routed (query, event) pairs skipped by the quiescent gate",
                fn=lambda: shared.events_gated,
            )
        if self.sanitizer is not None:
            sanitizer = self.sanitizer
            registry.counter(
                "sanitizer_trips_total",
                "Invariant violations detected by the sanitizer",
                fn=lambda: sanitizer.total_trips,
            )
        if self.tracer is not None:
            tracer = self.tracer
            registry.counter(
                "trace_spans_total",
                "Spans recorded by the attached tracer",
                fn=lambda: tracer.recorded,
            )
            registry.counter(
                "trace_spans_dropped_total",
                "Spans evicted from the trace ring buffer",
                fn=lambda: tracer.dropped,
            )
        for name, registered in self._queries.items():
            self._register_query_metrics(registry, name, registered)
        return registry

    @staticmethod
    def _register_query_metrics(
        registry: MetricsRegistry, name: str, registered: RegisteredQuery
    ) -> None:
        query_metrics = registered.metrics
        stats = registered.matcher.stats
        matcher = registered.matcher
        counters: list[tuple[str, str, Callable[[], float]]] = [
            (
                "query_events_routed_total",
                "Events routed to this query's operator chain",
                lambda: query_metrics.events_routed,
            ),
            (
                "query_matches_total",
                "Matches completed (and confirmed)",
                lambda: query_metrics.matches,
            ),
            (
                "query_emissions_total",
                "Emissions released to sinks",
                lambda: query_metrics.emissions,
            ),
            (
                "runs_created_total",
                "Runs started at stage 0",
                lambda: stats.runs_created,
            ),
            (
                "runs_extended_total",
                "Run extensions (binds and Kleene takes)",
                lambda: stats.runs_extended,
            ),
            (
                "runs_pruned_total",
                "Partial runs cut by score-bound pruning",
                lambda: stats.runs_pruned,
            ),
            (
                "runs_expired_total",
                "Runs dropped by window or epoch expiry",
                lambda: stats.runs_expired,
            ),
            (
                "partition_skips_total",
                "Relevant events carrying no partition key",
                lambda: stats.events_skipped_no_key,
            ),
            (
                "evaluation_errors_total",
                "Predicate evaluations failed under the lenient policy",
                lambda: stats.evaluation_errors
                + registered.ranker.scoring_errors
                + registered.yield_errors,
            ),
            (
                "shared_hits_total",
                "Shared-index consultations answered from the per-event memo",
                lambda: stats.shared_hits,
            ),
            (
                "shared_misses_total",
                "Shared-index consultations that had to evaluate",
                lambda: stats.shared_misses,
            ),
            (
                "query_cpu_seconds_total",
                "CPU seconds spent inside this query's operator chain",
                lambda: (
                    registered.profile.total_seconds
                    if registered.profile is not None
                    else query_metrics.latency.total
                ),
            ),
        ]
        for metric_name, help_text, fn in counters:
            registry.counter(metric_name, help_text, fn=fn, query=name)
        registry.gauge(
            "live_runs",
            "Partial runs currently alive",
            fn=lambda: matcher.live_run_count,
            query=name,
        )
        registry.gauge(
            "peak_live_runs",
            "High-water mark of live partial runs",
            fn=lambda: stats.peak_live_runs,
            agg="max",
            query=name,
        )
        registry.histogram(
            "latency_seconds",
            "Per-event pipeline latency",
            recorder=query_metrics.latency,
            query=name,
        )
        # Sinks churn (subscriptions attach and cancel), so their slot
        # labels are rebuilt from scratch on every registration pass.
        registry.prune(name="sink_emissions_total", query=name)
        for index, sink in enumerate(registered.sinks):
            if not hasattr(sink, "emissions_accepted"):
                continue
            registry.counter(
                "sink_emissions_total",
                "Emissions delivered to each sink",
                fn=lambda sink=sink: sink.emissions_accepted,
                query=name,
                sink=type(sink).__name__,
                slot=str(index),
            )
        if registered.profile is not None:
            for stage, timer in registered.profile.timers():
                registry.counter(
                    "stage_seconds_total",
                    "Wall time spent per pipeline stage",
                    fn=lambda timer=timer: timer.total,
                    query=name,
                    stage=stage,
                )

    def _next_auto_name(self) -> str:
        self._auto_name_counter += 1
        candidate = f"q{self._auto_name_counter}"
        while candidate in self._queries:
            self._auto_name_counter += 1
            candidate = f"q{self._auto_name_counter}"
        return candidate
