"""Result sinks and subscriptions: where a query's emissions go.

A sink is anything with an ``accept(emission)`` method; ``flush()`` and
``close()`` are *optional* lifecycle extensions (buffered sinks implement
them, in-memory ones need not).  The engine propagates the lifecycle:
:meth:`~repro.runtime.engine.CEPREngine.flush` flushes every sink and
:meth:`~repro.runtime.engine.CEPREngine.close` closes them, so a JSONL
file sink no longer needs caller-side special-casing.

The first-class wiring surface is the **subscription API**::

    sub = query.subscribe(lambda emission: ..., kinds=("window_close",))
    ...
    sub.cancel()            # detach; delivery stops immediately

``subscribe`` accepts a plain callback *or* a full sink object (anything
with ``accept``); the returned :class:`Subscription` is itself a sink that
filters by emission kind, counts deliveries, and forwards the lifecycle
calls to the wrapped sink.  The older ``add_sink`` remains as a deprecated
shim over ``subscribe``.

All built-in sinks share :class:`BaseSink`: subclasses implement
``_deliver`` and get the ``emissions_accepted`` counter and the default
no-op lifecycle for free.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Protocol, TextIO, Union

from repro.engine.match import Match
from repro.ranking.emission import Emission, EmissionKind


class ResultSink(Protocol):
    """Anything that can receive emissions.

    ``flush`` and ``close`` are optional extensions of the protocol: the
    engine calls them through :func:`flush_sink`/:func:`close_sink`, which
    skip sinks that do not implement them.  Implement ``flush`` when the
    sink buffers (write-through to disk or network) and ``close`` when it
    owns a resource (file handle, socket).
    """

    def accept(self, emission: Emission) -> None: ...


#: What ``subscribe`` accepts: a callback or a full sink object.
SinkLike = Union[Callable[[Emission], None], ResultSink]


def flush_sink(sink: ResultSink) -> None:
    """Call ``sink.flush()`` if the sink implements the optional method."""
    flush = getattr(sink, "flush", None)
    if callable(flush):
        flush()


def close_sink(sink: ResultSink) -> None:
    """Call ``sink.close()`` if the sink implements the optional method."""
    close = getattr(sink, "close", None)
    if callable(close):
        close()


def normalize_kinds(
    kinds: EmissionKind | str | Iterable[EmissionKind | str] | None,
) -> frozenset[EmissionKind] | None:
    """Normalise a kinds filter to a frozenset of :class:`EmissionKind`.

    ``None`` means "all kinds".  Accepts enum members, their string values
    (``"window_close"``), or any iterable of either.
    """
    if kinds is None:
        return None
    if isinstance(kinds, (EmissionKind, str)):
        kinds = (kinds,)
    normalized = frozenset(
        kind if isinstance(kind, EmissionKind) else EmissionKind(kind)
        for kind in kinds
    )
    if not normalized:
        raise ValueError("kinds filter must name at least one emission kind")
    return normalized


class BaseSink:
    """Shared sink plumbing: the acceptance counter and no-op lifecycle.

    Subclasses implement :meth:`_deliver`; ``accept`` counts then
    delegates.  ``flush``/``close`` are no-ops unless overridden.
    """

    def __init__(self) -> None:
        self.emissions_accepted = 0

    def accept(self, emission: Emission) -> None:
        self.emissions_accepted += 1
        self._deliver(emission)

    def _deliver(self, emission: Emission) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output downstream (no-op by default)."""

    def close(self) -> None:
        """Release owned resources (no-op by default)."""


class Subscription(BaseSink):
    """A detachable, kind-filtered delivery handle for one subscriber.

    Returned by ``RegisteredQuery.subscribe`` (and the engine/runner-level
    ``subscribe`` wrappers).  The subscription *is* the sink registered on
    the query: it filters emissions by :class:`EmissionKind`, counts what
    it delivered (``emissions_accepted``), and forwards ``flush``/``close``
    to the wrapped target when that target is a sink object.

    ``cancel`` detaches the subscription from its owner and is idempotent;
    a cancelled subscription drops anything still routed to it.
    """

    def __init__(
        self,
        owner: Any,
        target: SinkLike,
        kinds: EmissionKind | str | Iterable[EmissionKind | str] | None = None,
    ) -> None:
        super().__init__()
        self._owner = owner
        self.kinds = normalize_kinds(kinds)
        accept = getattr(target, "accept", None)
        if callable(accept):
            self._sink: ResultSink | None = target  # type: ignore[assignment]
            self._callback: Callable[[Emission], None] = accept
        elif callable(target):
            self._sink = None
            self._callback = target
        else:
            raise TypeError(
                f"subscribe target must be a callable or a sink with "
                f"accept(), got {type(target).__name__}"
            )
        self.active = True

    @property
    def target(self) -> SinkLike:
        """The callback or sink this subscription delivers to."""
        return self._sink if self._sink is not None else self._callback

    def accept(self, emission: Emission) -> None:
        if not self.active:
            return
        if self.kinds is not None and emission.kind not in self.kinds:
            return
        self.emissions_accepted += 1
        self._callback(emission)

    def flush(self) -> None:
        if self._sink is not None:
            flush_sink(self._sink)

    def close(self) -> None:
        if self._sink is not None:
            close_sink(self._sink)

    def cancel(self) -> bool:
        """Detach from the owning query; safe to call more than once.

        Returns ``True`` when this call detached the subscription and
        ``False`` when it was already cancelled.
        """
        if not self.active:
            return False
        self.active = False
        remove = getattr(self._owner, "remove_sink", None)
        if callable(remove):
            remove(self)
        return True


class CollectorSink(BaseSink):
    """Stores every emission; the default sink behind ``Query.results()``."""

    def __init__(self) -> None:
        super().__init__()
        self.emissions: list[Emission] = []

    def _deliver(self, emission: Emission) -> None:
        self.emissions.append(emission)

    def __len__(self) -> int:
        return len(self.emissions)

    def __iter__(self) -> Iterator[Emission]:
        return iter(self.emissions)

    def matches(self) -> list[Match]:
        """All matches across emissions, in emission order (may repeat a
        match across eager revisions)."""
        return [m for e in self.emissions for m in e.ranking]

    def final_ranking(self) -> list[Match]:
        """The ranking of the most recent emission."""
        return list(self.emissions[-1].ranking) if self.emissions else []

    def clear(self) -> None:
        self.emissions.clear()


class CallbackSink(BaseSink):
    """Invokes ``callback(emission)`` for every emission."""

    def __init__(self, callback: Callable[[Emission], None]) -> None:
        super().__init__()
        self._callback = callback

    def _deliver(self, emission: Emission) -> None:
        self._callback(emission)


class PrintSink(BaseSink):
    """Writes ``emission.describe()`` lines to a text stream."""

    def __init__(self, out: TextIO) -> None:
        super().__init__()
        self._out = out

    def _deliver(self, emission: Emission) -> None:
        self._out.write(emission.describe() + "\n")

    def flush(self) -> None:
        self._out.flush()


class JSONLSink(BaseSink):
    """Persists emissions as JSON lines (one emission per line).

    Accepts an open text handle or a path; when given a path, the file is
    opened lazily on the first emission.  The sink participates in the
    standard lifecycle — engine ``flush``/``close`` propagate here — and
    still works as a context manager for standalone use.

    ``mode`` controls what happens to an existing file at that path:
    ``"w"`` (default) truncates, ``"a"`` appends.  A resumed run
    (``cepr run --resume``) must use ``"a"`` — truncating would destroy
    the emissions already written before the crash.
    """

    def __init__(self, target: Any, mode: str = "w") -> None:
        from pathlib import Path

        super().__init__()
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._handle: TextIO | None = None
        else:
            self._path = None
            self._handle = target
        self._mode = mode
        self.emissions_written = 0

    @property
    def emissions_accepted(self) -> int:  # type: ignore[override]
        return self.emissions_written

    @emissions_accepted.setter
    def emissions_accepted(self, value: int) -> None:
        self.emissions_written = value

    def _deliver(self, emission: Emission) -> None:
        from repro.runtime.serialize import emission_to_line

        if self._handle is None:
            assert self._path is not None
            self._handle = self._path.open(self._mode)
        self._handle.write(emission_to_line(emission) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._path is not None and self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
