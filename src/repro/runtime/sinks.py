"""Result sinks: where a query's emissions go.

A sink is anything with an ``accept(emission)`` method.  Queries can have
several; the built-ins cover collection (tests, batch analysis), callbacks
(application integration), and line-printing (demos).
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol, TextIO

from repro.engine.match import Match
from repro.ranking.emission import Emission


class ResultSink(Protocol):
    """Anything that can receive emissions."""

    def accept(self, emission: Emission) -> None: ...


class CollectorSink:
    """Stores every emission; the default sink behind ``Query.results()``."""

    def __init__(self) -> None:
        self.emissions: list[Emission] = []
        self.emissions_accepted = 0

    def accept(self, emission: Emission) -> None:
        self.emissions_accepted += 1
        self.emissions.append(emission)

    def __len__(self) -> int:
        return len(self.emissions)

    def __iter__(self) -> Iterator[Emission]:
        return iter(self.emissions)

    def matches(self) -> list[Match]:
        """All matches across emissions, in emission order (may repeat a
        match across eager revisions)."""
        return [m for e in self.emissions for m in e.ranking]

    def final_ranking(self) -> list[Match]:
        """The ranking of the most recent emission."""
        return list(self.emissions[-1].ranking) if self.emissions else []

    def clear(self) -> None:
        self.emissions.clear()


class CallbackSink:
    """Invokes ``callback(emission)`` for every emission."""

    def __init__(self, callback: Callable[[Emission], None]) -> None:
        self._callback = callback
        self.emissions_accepted = 0

    def accept(self, emission: Emission) -> None:
        self.emissions_accepted += 1
        self._callback(emission)


class PrintSink:
    """Writes ``emission.describe()`` lines to a text stream."""

    def __init__(self, out: TextIO) -> None:
        self._out = out
        self.emissions_accepted = 0

    def accept(self, emission: Emission) -> None:
        self.emissions_accepted += 1
        self._out.write(emission.describe() + "\n")


class JSONLSink:
    """Persists emissions as JSON lines (one emission per line).

    Accepts an open text handle or a path; when given a path, the file is
    opened lazily on the first emission and must be closed by the caller
    via :meth:`close` (or use the sink as a context manager).

    ``mode`` controls what happens to an existing file at that path:
    ``"w"`` (default) truncates, ``"a"`` appends.  A resumed run
    (``cepr run --resume``) must use ``"a"`` — truncating would destroy
    the emissions already written before the crash.
    """

    def __init__(self, target, mode: str = "w") -> None:
        from pathlib import Path

        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        if isinstance(target, (str, Path)):
            self._path = Path(target)
            self._handle: TextIO | None = None
        else:
            self._path = None
            self._handle = target
        self._mode = mode
        self.emissions_written = 0

    @property
    def emissions_accepted(self) -> int:
        return self.emissions_written

    def accept(self, emission: Emission) -> None:
        from repro.runtime.serialize import emission_to_line

        if self._handle is None:
            assert self._path is not None
            self._handle = self._path.open(self._mode)
        self._handle.write(emission_to_line(emission) + "\n")
        self.emissions_written += 1

    def close(self) -> None:
        if self._path is not None and self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
