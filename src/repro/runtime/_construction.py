"""Deprecation plumbing for direct runner construction.

The unified entry point for building runners is
:func:`repro.runtime.create_runner`.  The historical constructors
(``ThreadedEngineRunner(engine, ...)``, ``ShardedEngineRunner(...)``)
keep working as deprecated shims; they call
:func:`warn_direct_construction` so callers get a pointer at the
factory, while :func:`factory_construction` lets the factory itself
(and subclass ``super().__init__`` chains under it) construct without
noise.  The flag is thread-local: a worker thread building a runner
never suppresses a warning owed on another thread.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from typing import Iterator

_state = threading.local()


@contextmanager
def factory_construction() -> Iterator[None]:
    """Mark the current thread as inside :func:`~repro.runtime.create_runner`.

    Re-entrant: nested construction (a subclass ``__init__`` chaining to
    a deprecated base constructor) stays suppressed until the outermost
    block exits.
    """
    depth = getattr(_state, "depth", 0)
    _state.depth = depth + 1
    try:
        yield
    finally:
        _state.depth = depth


def warn_direct_construction(cls_name: str) -> None:
    """Issue the deprecation warning unless the factory is constructing.

    ``stacklevel=3`` points the warning at the code calling the runner
    constructor (this helper and the ``__init__`` frame are skipped).
    """
    if getattr(_state, "depth", 0):
        return
    warnings.warn(
        f"constructing {cls_name} directly is deprecated; use "
        "repro.runtime.create_runner(program, config) instead",
        DeprecationWarning,
        stacklevel=3,
    )
