"""Runtime metrics: throughput, latency, and per-query counters.

The monitor and the benchmark harness read these.  Latencies are recorded
with a bounded reservoir so long runs keep constant memory while the
percentile estimates stay representative.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field


class LatencyRecorder:
    """Reservoir-sampled latency series with percentile queries.

    Uses Vitter's algorithm R with a private seeded RNG, so recordings are
    deterministic for a fixed call sequence and never disturb global
    :mod:`random` state.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def record(self, latency_seconds: float) -> None:
        self.count += 1
        self.total += latency_seconds
        if latency_seconds > self.maximum:
            self.maximum = latency_seconds
        if len(self._samples) < self.capacity:
            self._samples.append(latency_seconds)
        else:
            index = self._rng.randrange(self.count)
            if index < self.capacity:
                self._samples[index] = latency_seconds

    def record_zero(self) -> None:
        """Record a zero-latency sample (skips the ``total``/``maximum`` math).

        The shared-execution skip path records one sample per elided
        (query, event) pair to keep the sample-per-routed-event invariant.
        Zeros get the same algorithm-R treatment as :meth:`record`: once
        the reservoir is full they must keep displacing samples at the
        standard ``capacity / count`` rate, or a quiescent-skip-heavy
        workload inflates ``count`` while the reservoir stays frozen on
        the non-zero latencies — biasing every percentile upward.
        """
        self.count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(0.0)
        else:
            index = self._rng.randrange(self.count)
            if index < self.capacity:
                self._samples[index] = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Empirical ``q``-th percentile (0 < q <= 100) of the reservoir.

        Linearly interpolates between adjacent order statistics (the
        ``numpy.percentile`` default): nearest-rank rounding systematically
        understates tail percentiles on small samples — with 10 samples a
        rounded p99 lands on the 9th largest value, not between the two
        largest.
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = max(0.0, min(1.0, q / 100)) * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def absorb(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's observations in (fleet aggregation).

        Exact for count/total/maximum; the percentile reservoir is merged
        by pooling both sample sets and subsampling back to capacity with
        the private RNG, which keeps the estimate representative when the
        pooled set overflows.
        """
        self.count += other.count
        self.total += other.total
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        pooled = self._samples + other._samples
        if len(pooled) > self.capacity:
            pooled = self._rng.sample(pooled, self.capacity)
        self._samples = pooled


@dataclass
class QueryMetrics:
    """Counters for one registered query."""

    events_routed: int = 0
    matches: int = 0
    emissions: int = 0
    revisions: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def snapshot(self) -> dict[str, float]:
        return {
            "events_routed": self.events_routed,
            "matches": self.matches,
            "emissions": self.emissions,
            "revisions": self.revisions,
            "latency_mean_us": self.latency.mean * 1e6,
            "latency_p50_us": self.latency.percentile(50) * 1e6,
            "latency_p99_us": self.latency.percentile(99) * 1e6,
        }


def aggregate_query_metrics(parts: "list[QueryMetrics]") -> "QueryMetrics":
    """Combine per-shard :class:`QueryMetrics` into one fleet-wide view.

    Counters sum; latency recorders are absorbed (see
    :meth:`LatencyRecorder.absorb`), so means stay exact and percentiles
    representative across the fleet.
    """
    total = QueryMetrics()
    for part in parts:
        total.events_routed += part.events_routed
        total.matches += part.matches
        total.emissions += part.emissions
        total.revisions += part.revisions
        total.latency.absorb(part.latency)
    return total


class EngineMetrics:
    """Engine-wide throughput accounting.

    Two rates are kept: the **lifetime** rate (:attr:`throughput`, events
    over the whole observed span — the benchmark harness reads this) and a
    **sliding-window** rate (:attr:`recent_throughput`, events over the
    trailing ``window_seconds``), so a live monitor on a long replay shows
    what the engine is doing *now* instead of a stale average.  The window
    is kept as one-second count buckets in a deque — O(1) per push,
    constant memory.
    """

    def __init__(
        self, clock=time.perf_counter, window_seconds: float = 10.0
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self._clock = clock
        self.window_seconds = window_seconds
        self.events_pushed = 0
        self.started_at: float | None = None
        self.last_push_at: float | None = None
        #: event-time watermark: highest event timestamp processed so far
        #: (``None`` until the first stamped push).  The pressure signals
        #: compare it against the submit-side watermark to measure ingest
        #: lag in event-time units.
        self.last_event_ts: float | None = None
        #: trailing one-second buckets: ``[second, events in that second]``.
        self._buckets: deque[list[float]] = deque()

    def on_push(self, event_ts: float | None = None) -> None:
        now = self._clock()
        if self.started_at is None:
            self.started_at = now
        self.last_push_at = now
        self.events_pushed += 1
        if event_ts is not None and (
            self.last_event_ts is None or event_ts > self.last_event_ts
        ):
            self.last_event_ts = event_ts
        second = int(now)
        buckets = self._buckets
        if buckets and buckets[-1][0] == second:
            buckets[-1][1] += 1
        else:
            buckets.append([second, 1])
            horizon = second - self.window_seconds
            while buckets and buckets[0][0] <= horizon:
                buckets.popleft()

    @property
    def elapsed(self) -> float:
        if self.started_at is None or self.last_push_at is None:
            return 0.0
        return self.last_push_at - self.started_at

    @property
    def throughput(self) -> float:
        """Lifetime events per second over the observed span (0 when idle)."""
        elapsed = self.elapsed
        return self.events_pushed / elapsed if elapsed > 0 else 0.0

    @property
    def recent_throughput(self) -> float:
        """Events per second over the trailing ``window_seconds``.

        Reads the clock (to age out buckets the stream stopped filling),
        so an idle engine decays to 0 instead of reporting its last burst
        forever.
        """
        if self.last_push_at is None:
            return 0.0
        now = self._clock()
        horizon = now - self.window_seconds
        total = sum(
            count for second, count in self._buckets if second + 1 > horizon
        )
        if total == 0:
            return 0.0
        assert self.started_at is not None
        span = min(self.window_seconds, max(now - self.started_at, 1e-9))
        return total / span
