"""Runtime metrics: throughput, latency, and per-query counters.

The monitor and the benchmark harness read these.  Latencies are recorded
with a bounded reservoir so long runs keep constant memory while the
percentile estimates stay representative.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


class LatencyRecorder:
    """Reservoir-sampled latency series with percentile queries.

    Uses Vitter's algorithm R with a private seeded RNG, so recordings are
    deterministic for a fixed call sequence and never disturb global
    :mod:`random` state.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def record(self, latency_seconds: float) -> None:
        self.count += 1
        self.total += latency_seconds
        if latency_seconds > self.maximum:
            self.maximum = latency_seconds
        if len(self._samples) < self.capacity:
            self._samples.append(latency_seconds)
        else:
            index = self._rng.randrange(self.count)
            if index < self.capacity:
                self._samples[index] = latency_seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Empirical ``q``-th percentile (0 < q <= 100) of the reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def absorb(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's observations in (fleet aggregation).

        Exact for count/total/maximum; the percentile reservoir is merged
        by pooling both sample sets and subsampling back to capacity with
        the private RNG, which keeps the estimate representative when the
        pooled set overflows.
        """
        self.count += other.count
        self.total += other.total
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        pooled = self._samples + other._samples
        if len(pooled) > self.capacity:
            pooled = self._rng.sample(pooled, self.capacity)
        self._samples = pooled


@dataclass
class QueryMetrics:
    """Counters for one registered query."""

    events_routed: int = 0
    matches: int = 0
    emissions: int = 0
    revisions: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def snapshot(self) -> dict[str, float]:
        return {
            "events_routed": self.events_routed,
            "matches": self.matches,
            "emissions": self.emissions,
            "revisions": self.revisions,
            "latency_mean_us": self.latency.mean * 1e6,
            "latency_p99_us": self.latency.percentile(99) * 1e6,
        }


def aggregate_query_metrics(parts: "list[QueryMetrics]") -> "QueryMetrics":
    """Combine per-shard :class:`QueryMetrics` into one fleet-wide view.

    Counters sum; latency recorders are absorbed (see
    :meth:`LatencyRecorder.absorb`), so means stay exact and percentiles
    representative across the fleet.
    """
    total = QueryMetrics()
    for part in parts:
        total.events_routed += part.events_routed
        total.matches += part.matches
        total.emissions += part.emissions
        total.revisions += part.revisions
        total.latency.absorb(part.latency)
    return total


class EngineMetrics:
    """Engine-wide throughput accounting."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.events_pushed = 0
        self.started_at: float | None = None
        self.last_push_at: float | None = None

    def on_push(self) -> None:
        now = self._clock()
        if self.started_at is None:
            self.started_at = now
        self.last_push_at = now
        self.events_pushed += 1

    @property
    def elapsed(self) -> float:
        if self.started_at is None or self.last_push_at is None:
            return 0.0
        return self.last_push_at - self.started_at

    @property
    def throughput(self) -> float:
        """Events per second over the observed span (0 when idle)."""
        elapsed = self.elapsed
        return self.events_pushed / elapsed if elapsed > 0 else 0.0
