"""A registered query: the per-query operator chain.

``RegisteredQuery`` wires matcher → scorer → ranker → sinks for one query
and is the handle the engine returns from ``register_query``.

Result delivery is wired through the subscription API: ``subscribe``
returns a detachable :class:`~repro.runtime.sinks.Subscription` (cancel it
to stop delivery), ``remove_sink`` detaches any sink, and the legacy
``add_sink`` survives as a deprecated shim.  Sinks with the optional
``flush``/``close`` lifecycle get both propagated from the engine.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING

from repro.engine.compiler import compile_automaton
from repro.language.analysis import run_analysis
from repro.engine.match import Match
from repro.engine.matcher import PatternMatcher
from repro.engine.runs import new_run
from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.language.ast_nodes import EmitKind
from repro.language.errors import EvaluationError
from repro.language.expressions import EvalContext
from repro.language.semantics import AnalyzedQuery
from repro.observability.profiling import StageProfile
from repro.observability.tracing import SpanKind, Tracer
from repro.ranking.emission import Emission
from repro.ranking.pruning import ScoreBoundPruner
from repro.ranking.ranker import Ranker
from repro.ranking.score import Scorer
from repro.runtime.metrics import QueryMetrics
from repro.runtime.sinks import (
    CollectorSink,
    ResultSink,
    SinkLike,
    Subscription,
    close_sink,
    flush_sink,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.observability.cost import CostAccount
    from repro.runtime.router import SharedExecutionIndex
    from repro.runtime.shedding import ShedController

_ROUTE = SpanKind.ROUTE
_EMIT = SpanKind.EMIT

#: Shed-probe classifications (see docs/SHEDDING.md).  ``SHED_SAFE`` events
#: are provably output-neutral to elide (inert for this query, or carrying a
#: score-bound certificate); ``SHED_PROTECTED`` events are bound into — or
#: threaten — live partial-match state and must never be dropped;
#: ``SHED_UNCERTIFIED`` events could matter but carry no proof either way,
#: so only the lossy adaptive sampler may drop them.
SHED_SAFE = "safe"
SHED_PROTECTED = "protected"
SHED_UNCERTIFIED = "uncertified"


class RegisteredQuery:
    """One live query inside a :class:`~repro.runtime.engine.CEPREngine`."""

    def __init__(
        self,
        name: str,
        analyzed: AnalyzedQuery,
        registry: SchemaRegistry | None = None,
        enable_pruning: bool = True,
        collect_results: bool = True,
        lenient_errors: bool = False,
        enable_profiling: bool = True,
        clock=time.perf_counter,
        shared: "SharedExecutionIndex | None" = None,
        compiled: bool = True,
    ) -> None:
        self.name = name
        self.analyzed = analyzed
        #: the engine's cross-query sharing state (``None`` outside a
        #: shared-execution engine); compilation interns prefix stages into
        #: it and the matcher consults its per-event predicate memo.
        self.shared = shared
        # Static analysis runs between semantic analysis and compilation;
        # findings never block registration (errors at this level mean "the
        # query cannot do useful work", e.g. contradictory predicates, but
        # running it is still well-defined).  The CLI surfaces them.
        self.diagnostics = run_analysis(analyzed, registry)
        self.automaton = compile_automaton(analyzed, shared)
        self.scorer = Scorer(analyzed.rank_keys)
        self.ranker = Ranker(analyzed, self.scorer, lenient_errors=lenient_errors)
        self.metrics = QueryMetrics()
        #: per-stage wall-time breakdown (``None`` when profiling is off:
        #: the observability benchmark's bare baseline).
        self.profile: StageProfile | None = (
            StageProfile() if enable_profiling else None
        )
        #: attached/detached by the engine via :meth:`set_tracer`.
        self.tracer: Tracer | None = None
        self._clock = clock
        self._last_seq = -1
        self._last_ts = 0.0
        self._flushed = False

        tumbling = analyzed.emit.kind is EmitKind.ON_WINDOW_CLOSE
        self.pruner: ScoreBoundPruner | None = None
        if enable_pruning and analyzed.is_ranked and tumbling and analyzed.limit:
            self.pruner = ScoreBoundPruner.from_registry(
                analyzed, registry, self.ranker.kth_bound_for_epoch
            )
        self.matcher = PatternMatcher(
            self.automaton,
            prune_hook=self.pruner,
            tumbling=tumbling,
            query_name=name,
            lenient_errors=lenient_errors,
            shared=shared,
            compiled=compiled,
        )

        self._lenient_errors = lenient_errors
        # Hoisted for the per-event skip check — it runs for every routed
        # (query, event) pair, so even an attribute chain is measurable.
        self._stage0 = self.automaton.stages[0]
        self._stage0_type = self._stage0.event_type
        self._yielded_ids: set[int] = set()
        #: derived events whose YIELD assignments failed (lenient mode).
        self.yield_errors = 0

        self.sinks: list[ResultSink] = []
        self.collector: CollectorSink | None = None
        if collect_results:
            self.collector = CollectorSink()
            self.sinks.append(self.collector)

    # -- wiring -----------------------------------------------------------------

    def subscribe(
        self, target: SinkLike, kinds=None
    ) -> Subscription:
        """Attach a subscriber; returns a cancellable handle.

        ``target`` is a callback ``(Emission) -> None`` or a sink object
        (anything with ``accept``).  ``kinds`` optionally restricts
        delivery to the given :class:`~repro.ranking.emission.EmissionKind`
        values (enum members or their string values).  Cancel the returned
        :class:`~repro.runtime.sinks.Subscription` to detach.
        """
        subscription = Subscription(self, target, kinds=kinds)
        self.sinks.append(subscription)
        return subscription

    def remove_sink(self, sink: ResultSink) -> bool:
        """Detach a sink (or subscription); returns whether it was attached.

        Accepts the attached object itself (a raw sink from the deprecated
        ``add_sink``, or a :class:`Subscription`) — or the target that a
        :meth:`subscribe` call wrapped, in which case its subscription is
        cancelled.
        """
        try:
            self.sinks.remove(sink)
        except ValueError:
            for attached in self.sinks:
                if isinstance(attached, Subscription) and attached.target is sink:
                    return attached.cancel()
            return False
        if isinstance(sink, Subscription):
            sink.active = False
        return True

    def add_sink(self, sink: ResultSink) -> "RegisteredQuery":
        """Deprecated: use :meth:`subscribe` (which returns a cancellable
        handle) instead.  Kept as a thin shim for older integrations."""
        warnings.warn(
            "RegisteredQuery.add_sink is deprecated; use "
            "RegisteredQuery.subscribe(sink) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.sinks.append(sink)
        return self

    def flush_sinks(self) -> None:
        """Propagate the optional ``flush`` lifecycle call to every sink."""
        for sink in self.sinks:
            flush_sink(sink)

    def close_sinks(self) -> None:
        """Propagate the optional ``close`` lifecycle call to every sink."""
        for sink in self.sinks:
            close_sink(sink)

    def set_tracer(self, tracer: Tracer | None) -> None:
        """Attach (or detach, with ``None``) a tracer to the whole chain."""
        self.tracer = tracer
        self.matcher.tracer = tracer
        self.ranker.tracer = tracer

    @property
    def relevant_types(self) -> frozenset[str]:
        return self.analyzed.relevant_types

    # -- processing --------------------------------------------------------------

    def skip_if_inert(self, event: Event) -> bool:
        """Shared-execution fast path: elide a provably no-op routed event.

        Returns True — after doing the minimal bookkeeping a full
        :meth:`process` call would have done — only when *every* link of
        the chain is provably inert for ``event``: the matcher holds no
        partial runs or pending matches (so the event can at most start a
        fresh run), the ranker would neither emit nor change state when
        observed with zero matches, and the event cannot bind stage 0 —
        either its type differs or the shared stage gate rejects it.
        Tracing disables the path: spans are part of the observable output.

        The gate consultation charges any lenient evaluation errors to
        this query's matcher stats exactly as a full :meth:`process` would,
        so error accounting stays identical to independent execution.

        The elision bookkeeping mirrors every piece of :meth:`process`
        state that later output depends on: the last-seen sequence and
        timestamp feed ``flush`` emissions' ``at_seq``/``at_ts``, and the
        routed/processed counters (plus one zero latency sample — the
        elided pipeline's cost is by construction indistinguishable from
        zero) keep ``cepr stats`` identical to independent execution.
        """
        if self.tracer is not None:
            return False
        shared = self.shared
        if shared is None or shared.current_event is not event:
            return False
        matcher = self.matcher
        if matcher._live_runs_cached or matcher._pendings_cached:
            return False
        if not self.ranker.inert_without_matches():
            return False
        if event.event_type == self._stage0_type and shared.stage_gate(
            self._stage0, matcher.stats, matcher.lenient_errors
        ):
            return False
        self._last_seq = event.seq
        self._last_ts = event.timestamp
        metrics = self.metrics
        metrics.events_routed += 1
        matcher.stats.events_processed += 1
        metrics.latency.record_zero()
        return True

    def shed_probe(
        self, event: Event, seq_hint: int | None = None
    ) -> "tuple[str, float | None]":
        """Classify ``event`` for the load-shedding controller.

        Returns ``(classification, headroom)``.  The ladder is strictly
        conservative — every ``SHED_SAFE`` verdict is backed by a proof
        that dropping (exact mode: eliding) the event cannot change this
        query's emissions:

        * type not relevant, or no partition key ⇒ the matcher ignores it;
        * :meth:`~repro.engine.matcher.PatternMatcher.event_touches_state`
          ⇒ ``SHED_PROTECTED`` (bound into / threatening live runs);
        * type differs from stage 0 ⇒ cannot start a run either;
        * single-stage patterns complete instantly on a stage-0 bind, so a
          shed would skip a whole detection ⇒ ``SHED_UNCERTIFIED``;
        * stage-0 predicates reject it ⇒ provably inert;
        * otherwise it would start a run: with a pruner, a **positive**
          :meth:`~repro.ranking.pruning.ScoreBoundPruner.event_headroom`
          over the hypothetical run certifies the shed (no completion can
          crack the current top-k); without one, or without a usable
          bound, the verdict is ``SHED_UNCERTIFIED``.

        ``seq_hint`` stands in for the sequence number on the runner's
        pre-ingest sampling path where ``event.seq`` is still ``-1``.
        The probe may consult the shared stage gate / evaluate stage-0
        predicates, so a kept event pays that work twice under shedding —
        emissions are unaffected, only cost accounting shifts slightly.
        """
        matcher = self.matcher
        if event.event_type not in matcher._relevant_types:
            return SHED_SAFE, None
        key = matcher._partitioner.key_of(event)
        if key is None:
            return SHED_SAFE, None
        if matcher.event_touches_state(event, key):
            return SHED_PROTECTED, None
        if event.event_type != self._stage0_type:
            return SHED_SAFE, None
        if matcher._last_stage_index == 0:
            return SHED_UNCERTIFIED, None
        if not matcher._stage_accepts_new(self._stage0, event):
            return SHED_SAFE, None
        pruner = self.pruner
        if pruner is None:
            return SHED_UNCERTIFIED, None
        candidate = new_run(self.automaton, event, key, matcher._tracked_attrs)
        headroom = pruner.event_headroom(candidate, event, seq=seq_hint)
        if headroom is None:
            return SHED_UNCERTIFIED, None
        if headroom > 0:
            return SHED_SAFE, headroom
        return SHED_UNCERTIFIED, headroom

    def shed_if_certified(
        self, event: Event, controller: "ShedController"
    ) -> list[Emission] | None:
        """Exact-mode shed: elide the match path under a safety certificate.

        Returns the emissions the elided event still produced (epoch
        closes, pending-match confirmations) when :meth:`shed_probe` says
        ``SHED_SAFE``, or ``None`` when the event must take the full
        :meth:`process` path.  The elision preserves every piece of
        observable output: windows still age and pendings still confirm
        through :meth:`~repro.engine.matcher.PatternMatcher.tick`, the
        ranker observes the event (so emission timing and revisions are
        unchanged), and the routed/latency bookkeeping mirrors
        :meth:`process`.  Tracing disables the path — spans are part of
        the observable output.  Run-level matcher stats (runs created
        then immediately pruned) are the only thing an elide skips.
        """
        if self.tracer is not None:
            return None
        classification, headroom = self.shed_probe(event)
        if classification is not SHED_SAFE:
            controller.note_exact_kept(classification)
            return None
        checker = controller.invariant_checker
        if checker is not None:
            checker.check_certified_shed(self, event)
        started = self._clock()
        self._last_seq = event.seq
        self._last_ts = event.timestamp
        completed = self.matcher.tick(event)
        emissions = self.ranker.observe(event, completed)
        self._account(event, completed, emissions, None)
        self.metrics.latency.record(self._clock() - started)
        controller.note_exact_shed(certified=headroom is not None)
        return emissions

    def process(self, event: Event) -> list[Emission]:
        """Feed one (already sequenced) event through the operator chain.

        With profiling enabled (the default) the pipeline is timed per
        stage — two extra clock reads per event; with it disabled only the
        whole-pipeline latency is measured (the observability benchmark's
        bare baseline).
        """
        profile = self.profile
        tracer = self.tracer
        clock = self._clock
        self._last_seq = event.seq
        self._last_ts = event.timestamp
        if tracer is not None:
            tracer.record(_ROUTE, event.seq, event.timestamp, self.name)

        if profile is None:
            started = clock()
            matches = self.matcher.process(event)
            emissions = self.ranker.observe(event, matches)
            self._account(event, matches, emissions, tracer)
            self.metrics.latency.record(clock() - started)
            return emissions

        started = clock()
        matches = self.matcher.process(event)
        after_match = clock()
        emissions = self.ranker.observe(event, matches)
        after_rank = clock()
        self._account(event, matches, emissions, tracer)
        after_emit = clock()
        self.metrics.latency.record(after_emit - started)
        profile.match.add(after_match - started)
        profile.rank.add(after_rank - after_match)
        profile.emit.add(after_emit - after_rank)
        return emissions

    def _account(
        self,
        event: Event,
        matches: list[Match],
        emissions: list[Emission],
        tracer: Tracer | None,
    ) -> None:
        """Shared bookkeeping + sink fan-out for :meth:`process`."""
        self.metrics.events_routed += 1
        self.metrics.matches += len(matches)
        self.metrics.emissions += len(emissions)
        self._fan_out(emissions, event.seq, event.timestamp, tracer)

    def _fan_out(
        self,
        emissions: list[Emission],
        seq: int,
        ts: float,
        tracer: Tracer | None,
    ) -> None:
        """Deliver emissions to the sinks, recording one EMIT span each."""
        for emission in emissions:
            if tracer is not None:
                tracer.record(
                    _EMIT,
                    seq,
                    ts,
                    self.name,
                    emission_kind=emission.kind.value,
                    revision=emission.revision,
                    matches=len(emission.ranking),
                )
            for sink in self.sinks:
                sink.accept(emission)

    def advance_time(self, timestamp: float) -> list[Emission]:
        """Heartbeat: expire time windows and release due emissions."""
        confirmed = self.matcher.advance_time(timestamp)
        emissions = self.ranker.tick(confirmed, self._last_seq, timestamp)
        self._last_ts = max(self._last_ts, timestamp)
        self.metrics.matches += len(confirmed)
        self.metrics.emissions += len(emissions)
        self._fan_out(emissions, self._last_seq, timestamp, self.tracer)
        return emissions

    def flush(self) -> list[Emission]:
        """End of stream: confirm pendings, release held rankings."""
        if self._flushed:
            return []
        self._flushed = True
        final_matches = self.matcher.flush()
        emissions = self.ranker.observe_final(
            final_matches, self._last_seq, self._last_ts
        )
        self.metrics.matches += len(final_matches)
        self.metrics.emissions += len(emissions)
        self._fan_out(emissions, self._last_seq, self._last_ts, self.tracer)
        return emissions

    @property
    def has_yield(self) -> bool:
        return self.analyzed.yield_spec is not None

    def derive_events(self, emissions: list[Emission]) -> list[Event]:
        """Convert each distinct match in ``emissions`` to a derived event.

        A match appearing in several (eager/periodic) revisions derives one
        event only, the first time it is emitted.  The derived event's
        timestamp is the emission point, preserving stream-time monotonicity.
        """
        spec = self.analyzed.yield_spec
        if spec is None:
            return []
        derived: list[Event] = []
        for emission in emissions:
            for match in emission.ranking:
                if match.detection_index in self._yielded_ids:
                    continue
                self._yielded_ids.add(match.detection_index)
                ctx = EvalContext(bindings=match.bindings)
                payload = {}
                try:
                    for attr, _expr, evaluator in spec.assignments:
                        payload[attr] = evaluator(ctx)
                except EvaluationError:
                    if not self._lenient_errors:
                        raise
                    self.yield_errors += 1
                    continue
                derived.append(Event(spec.event_type, emission.at_ts, **payload))
        return derived

    # -- checkpointing -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe snapshot of the whole operator chain's mutable state.

        Covers the matcher (runs, pendings), the ranker (scopes, revision
        counters), and the bookkeeping needed for deterministic resume.
        Collected emission *history* and latency reservoirs are not state —
        they never influence future output — and are excluded.
        """
        return {
            "last_seq": self._last_seq,
            "last_ts": self._last_ts,
            "flushed": self._flushed,
            "yielded_ids": sorted(self._yielded_ids),
            "yield_errors": self.yield_errors,
            "matcher": self.matcher.snapshot(),
            "ranker": self.ranker.snapshot(),
            "metrics": {
                "events_routed": self.metrics.events_routed,
                "matches": self.metrics.matches,
                "emissions": self.metrics.emissions,
                "revisions": self.metrics.revisions,
            },
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (freshly registered) query."""
        self._last_seq = int(state["last_seq"])
        self._last_ts = float(state["last_ts"])
        self._flushed = bool(state["flushed"])
        self._yielded_ids = set(state["yielded_ids"])
        self.yield_errors = int(state["yield_errors"])
        self.matcher.restore(state["matcher"])
        self.ranker.restore(state["ranker"])
        counters = state["metrics"]
        self.metrics.events_routed = int(counters["events_routed"])
        self.metrics.matches = int(counters["matches"])
        self.metrics.emissions = int(counters["emissions"])
        self.metrics.revisions = int(counters["revisions"])

    def cost_account(self) -> "CostAccount":
        """This query's live :class:`~repro.observability.cost.CostAccount`."""
        from repro.observability.cost import CostAccount

        return CostAccount.from_query(self)

    def explain(self) -> str:
        """Readable evaluation plan: stages, predicate placement, ranking.

        Once the query has processed events with profiling enabled, the
        plan is annotated with the observed per-stage time split and the
        condensed cost account (runs, prune ratio, shared hit/miss).
        """
        from repro.engine.explain import explain

        text = explain(self.automaton, pruning_enabled=self.pruner is not None)
        if self.shared is not None:
            text += f"\n{self._sharing_block()}"
        if self.profile is not None and self.profile.total_seconds > 0:
            text += f"\nstage profile: {self.profile.describe()}"
        if self.metrics.events_routed:
            text += f"\ncost: {self.cost_account().describe()}"
        return text

    def _sharing_block(self) -> str:
        """One-line sharing summary for :meth:`explain`.

        Reports how deep the automaton's prefix head is co-owned with
        other registered queries (chain keys are prefix-closed, so the
        first privately-owned stage ends the shared head) and how many of
        the query's predicates are served by cross-query index entries.
        """
        shared = self.shared
        assert shared is not None
        keys = self.automaton.prefix_keys
        head = 0
        for index, key in enumerate(keys):
            if len(shared.prefix_owners(key)) > 1:
                head = index + 1
            else:
                break
        specs = [
            spec
            for stage in self.automaton.stages
            for spec in (*stage.bind_predicates, *stage.incremental_predicates)
        ]
        specs.extend(
            spec
            for negation in self.automaton.negations
            for spec in negation.predicates
        )
        cross_query = sum(
            1
            for spec in specs
            if spec.fingerprint is not None
            and len(shared.predicate_owners(spec.fingerprint)) > 1
        )
        return (
            f"sharing: prefix head co-owned for {head}/{len(keys)} stages; "
            f"{cross_query}/{len(specs)} predicates served by cross-query "
            f"index entries"
        )

    # -- results ------------------------------------------------------------------

    def results(self) -> list[Emission]:
        """All collected emissions (requires the default collector sink)."""
        if self.collector is None:
            raise RuntimeError(
                f"query {self.name!r} was registered with collect_results=False"
            )
        return list(self.collector.emissions)

    def matches(self) -> list[Match]:
        if self.collector is None:
            raise RuntimeError(
                f"query {self.name!r} was registered with collect_results=False"
            )
        return self.collector.matches()

    def final_ranking(self) -> list[Match]:
        if self.collector is None:
            raise RuntimeError(
                f"query {self.name!r} was registered with collect_results=False"
            )
        return self.collector.final_ranking()
