"""Live text monitor — the demo paper's "user-friendly interface".

The ICDE demo showed a GUI that tails each query's ranked results and lets
the user watch the system in real time; this module provides the
terminal-friendly equivalent: :class:`Monitor` renders a snapshot of every
registered query (its text, metrics, and current top results) and
:meth:`Monitor.run_live` refreshes it on an interval while a stream is
being replayed.
"""

from __future__ import annotations

import sys
import time as _time
from typing import Callable, TextIO

from repro.language.printer import format_query
from repro.ranking.emission import Emission
from repro.runtime.engine import CEPREngine
from repro.runtime.query import RegisteredQuery

_RULE = "=" * 72


class Monitor:
    """Renders engine state as plain text (see module docstring)."""

    def __init__(self, engine: CEPREngine, top_n: int = 5) -> None:
        self.engine = engine
        self.top_n = top_n

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """A full snapshot of the engine: header + one block per query."""
        lines = [self._header()]
        for registered in self.engine.queries():
            lines.append(self._render_query(registered))
        return "\n".join(lines)

    def _header(self) -> str:
        metrics = self.engine.metrics
        return (
            f"{_RULE}\n"
            f"CEPR monitor — {len(self.engine.queries())} queries, "
            f"{metrics.events_pushed} events, "
            f"{metrics.throughput:,.0f} ev/s\n"
            f"{_RULE}"
        )

    def _render_query(self, registered: RegisteredQuery) -> str:
        lines = [f"-- query {registered.name} " + "-" * max(0, 50 - len(registered.name))]
        for text_line in format_query(registered.analyzed.ast).splitlines():
            lines.append(f"   | {text_line}")
        m = registered.metrics
        s = registered.matcher.stats
        extras = []
        if registered.matcher.pending_count:
            extras.append(f"pending={registered.matcher.pending_count}")
        if registered.has_yield:
            extras.append(f"derived_type={registered.analyzed.yield_spec.event_type}")
        if s.evaluation_errors:
            extras.append(f"eval_errors={s.evaluation_errors}")
        suffix = (" " + " ".join(extras)) if extras else ""
        lines.append(
            f"   events={m.events_routed} matches={m.matches} "
            f"emissions={m.emissions} live_runs={registered.matcher.live_run_count} "
            f"pruned={s.runs_pruned} p99={m.latency.percentile(99) * 1e6:.0f}us"
            f"{suffix}"
        )
        lines.extend(self._render_ranking(registered))
        return "\n".join(lines)

    def _render_ranking(self, registered: RegisteredQuery) -> list[str]:
        if registered.collector is None or not registered.collector.emissions:
            return ["   (no emissions yet)"]
        last: Emission = registered.collector.emissions[-1]
        lines = [
            f"   last emission: {last.kind.value} rev={last.revision} "
            f"t={last.at_ts:g}"
        ]
        for position, match in enumerate(last.ranking[: self.top_n], start=1):
            lines.append(f"     #{position} {match.describe()}")
        if len(last.ranking) > self.top_n:
            lines.append(f"     ... {len(last.ranking) - self.top_n} more")
        return lines

    # -- live loop ----------------------------------------------------------------

    def run_live(
        self,
        refresh_seconds: float = 1.0,
        iterations: int | None = None,
        out: TextIO = sys.stdout,
        sleep: Callable[[float], None] = _time.sleep,
        clear: bool = True,
    ) -> None:
        """Repeatedly render to ``out``.

        Designed to run in a thread next to a replaying stream; pass
        ``iterations`` to bound the loop (required in tests) and a fake
        ``sleep`` to run instantly.
        """
        rendered = 0
        while iterations is None or rendered < iterations:
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(self.render() + "\n")
            out.flush()
            rendered += 1
            if iterations is not None and rendered >= iterations:
                return
            sleep(refresh_seconds)
