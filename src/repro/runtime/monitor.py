"""Live text monitor — the demo paper's "user-friendly interface".

The ICDE demo showed a GUI that tails each query's ranked results and lets
the user watch the system in real time; this module provides the
terminal-friendly equivalent: :class:`Monitor` renders a snapshot of every
registered query (its text, metrics, stage-time breakdown, and current top
results) and :meth:`Monitor.run_live` refreshes it on an interval while a
stream is being replayed.

The monitor is duck-typed over its source: a
:class:`~repro.runtime.engine.CEPREngine` or a
:class:`~repro.runtime.sharded.ShardedEngineRunner` both work (the runner's
:class:`~repro.runtime.sharded.ShardedQuery` handles are shaped like
registered queries, and its ``shard_stats()`` adds a per-shard block).
"""

from __future__ import annotations

import sys
import time as _time
from typing import Any, Callable, TextIO

from repro.language.printer import format_query
from repro.ranking.emission import Emission

_RULE = "=" * 72


class Monitor:
    """Renders engine (or sharded-runner) state as plain text."""

    def __init__(self, engine: Any, top_n: int = 5) -> None:
        self.engine = engine
        self.top_n = top_n
        self._last: dict[str, Emission] = {}
        self._subscriptions: list[Any] = []

    # -- subscriptions --------------------------------------------------------

    def track(self) -> "Monitor":
        """Subscribe to every query so "last emission" works live.

        Uses the first-class subscription API instead of peeking at each
        query's collector, which also covers queries registered with
        ``collect_results=False``.  Call before the stream starts;
        :meth:`untrack` cancels the subscriptions.
        """
        for registered in self.engine.queries():
            subscription = registered.subscribe(
                lambda emission, name=registered.name: self._last.__setitem__(
                    name, emission
                )
            )
            self._subscriptions.append(subscription)
        return self

    def untrack(self) -> None:
        """Cancel the subscriptions installed by :meth:`track`."""
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions.clear()

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """A full snapshot of the source: header + one block per query."""
        lines = [self._header()]
        shard_block = self._render_shards()
        if shard_block:
            lines.append(shard_block)
        for registered in self.engine.queries():
            lines.append(self._render_query(registered))
        return "\n".join(lines)

    def _header(self) -> str:
        metrics = self.engine.metrics
        recent = getattr(metrics, "recent_throughput", 0.0)
        backlog = getattr(self.engine, "backlog", None)
        tail = f", {recent:,.0f} ev/s recent" if recent else ""
        if backlog:
            tail += f", backlog={backlog}"
        # Runner sources (threaded/sharded) expose a pressure assessor;
        # a bare engine has no ingest queue, hence no pressure to show.
        pressure = getattr(self.engine, "pressure", None)
        if pressure is not None:
            tail += f", {pressure().describe()}"
        # Same story for the load-shedding controller (policy "off" is
        # omitted — nothing can shed, so there is nothing to report).
        controller = getattr(self.engine, "shed_controller", None)
        if controller is not None and controller.policy != "off":
            tail += f", {controller.describe()}"
        return (
            f"{_RULE}\n"
            f"CEPR monitor — {len(self.engine.queries())} queries, "
            f"{metrics.events_pushed} events, "
            f"{metrics.throughput:,.0f} ev/s{tail}\n"
            f"{_RULE}"
        )

    def _render_shards(self) -> str | None:
        """Per-shard block when the source is a sharded runner."""
        shard_stats = getattr(self.engine, "shard_stats", None)
        if shard_stats is None:
            return None
        rows = shard_stats()
        if not rows:
            return None
        lines = [f"-- shards ({len(rows)} workers) " + "-" * 38]
        for row in rows:
            lines.append(
                f"   shard {row['shard']} [{row['role']}]: "
                f"events={row['events_processed']} "
                f"backlog={row['backlog']} live_runs={row['live_runs']}"
            )
        return "\n".join(lines)

    def _render_query(self, registered: Any) -> str:
        lines = [f"-- query {registered.name} " + "-" * max(0, 50 - len(registered.name))]
        for text_line in format_query(registered.analyzed.ast).splitlines():
            lines.append(f"   | {text_line}")
        m = registered.metrics
        s = registered.matcher.stats
        extras = []
        if registered.matcher.pending_count:
            extras.append(f"pending={registered.matcher.pending_count}")
        if registered.has_yield:
            extras.append(f"derived_type={registered.analyzed.yield_spec.event_type}")
        if s.evaluation_errors:
            extras.append(f"eval_errors={s.evaluation_errors}")
        if s.events_skipped_no_key:
            extras.append(f"partition_skips={s.events_skipped_no_key}")
        shards = getattr(registered, "shards", None)
        if shards is not None:
            extras.append(f"shards={shards}")
        if getattr(registered, "solo_fallback", False):
            extras.append("SOLO-FALLBACK")
        suffix = (" " + " ".join(extras)) if extras else ""
        lines.append(
            f"   events={m.events_routed} matches={m.matches} "
            f"emissions={m.emissions} live_runs={registered.matcher.live_run_count} "
            f"pruned={s.runs_pruned} p99={m.latency.percentile(99) * 1e6:.0f}us"
            f"{suffix}"
        )
        profile = getattr(registered, "profile", None)
        if profile is not None and profile.total_seconds > 0:
            lines.append(f"   stages: {profile.describe()}")
        cost_account = getattr(registered, "cost_account", None)
        if cost_account is not None and m.events_routed:
            lines.append(f"   cost: {cost_account().describe()}")
        lines.extend(self._render_ranking(registered))
        return "\n".join(lines)

    def _render_ranking(self, registered: Any) -> list[str]:
        last: Emission | None = self._last.get(registered.name)
        if last is None:
            collector = getattr(registered, "collector", None)
            if collector is None or not collector.emissions:
                return ["   (no emissions yet)"]
            last = collector.emissions[-1]
        lines = [
            f"   last emission: {last.kind.value} rev={last.revision} "
            f"t={last.at_ts:g}"
        ]
        for position, match in enumerate(last.ranking[: self.top_n], start=1):
            lines.append(f"     #{position} {match.describe()}")
        if len(last.ranking) > self.top_n:
            lines.append(f"     ... {len(last.ranking) - self.top_n} more")
        return lines

    # -- live loop ----------------------------------------------------------------

    def run_live(
        self,
        refresh_seconds: float = 1.0,
        iterations: int | None = None,
        out: TextIO = sys.stdout,
        sleep: Callable[[float], None] = _time.sleep,
        clear: bool = True,
    ) -> None:
        """Repeatedly render to ``out``.

        With ``clear=True`` each frame redraws in place: the cursor homes,
        every line is erased to end-of-line as it is rewritten, and
        whatever a shorter frame leaves below is erased — no full-screen
        clear, so the terminal never flickers.  ``clear=False`` appends
        frames (pipes, logs, tests).

        Designed to run in a thread next to a replaying stream; pass
        ``iterations`` to bound the loop (required in tests) and a fake
        ``sleep`` to run instantly.
        """
        rendered = 0
        while iterations is None or rendered < iterations:
            text = self.render()
            if clear:
                frame = "".join(
                    line + "\x1b[K\n" for line in text.split("\n")
                )
                out.write("\x1b[H" + frame + "\x1b[J")
            else:
                out.write(text + "\n")
            out.flush()
            rendered += 1
            if iterations is not None and rendered >= iterations:
                return
            sleep(refresh_seconds)
