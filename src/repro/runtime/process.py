"""Process-parallel sharded execution: true multi-core CEPR fleets.

:class:`~repro.runtime.sharded.ShardedEngineRunner` buys ordering and
merge determinism but not CPU parallelism — its shards are threads, so
NFA transition work and interval scoring serialise on the GIL.  This
module keeps the *entire* dispatch/merge layer (global sequence
assignment, shardability placement, the deterministic merge stage,
checkpoint coordination) and swaps only the execution substrate: each
shard's :class:`~repro.runtime.engine.CEPREngine` runs in a **worker
process**, fed over an OS pipe with the same length-prefixed JSON frame
codec the serving layer speaks (:mod:`repro.serve.protocol`).

Architecture
------------

::

    submit() ──► dispatch (seq assign, hash) ──► per-shard queue
                                                    │ consumer thread
                                                    ▼
                                  _ChildEngine (engine-shaped proxy)
                                     │  one-way "events" frames
                                     │  request/reply barriers
                                     ▼ stdin/stdout pipes
                              repro.runtime.process_worker (child)
                                     │ CEPREngine + compiled edges
                                     ▼
                          barrier replies carry a *state mirror*
                     (emission deltas, counters, open epochs, …)

Each parent-side shard keeps the familiar bounded queue + consumer
thread; the consumer batches events into one frame per ``push_batch``
(amortising JSON cost) and round-trips barrier operations, applying the
returned mirror to proxy objects shaped like
:class:`~repro.runtime.query.RegisteredQuery`.  The merge stage then
runs unchanged against those proxies, so merged output is byte-identical
to the threaded runner — and therefore to a single engine.

Consistency model: mirrored state (metrics, matcher counters, emission
deltas) is refreshed at **barrier points** (``sync``/``poll``/
``advance_time``/``flush``/checkpoints).  Between barriers the proxies
serve the last mirrored values — the same read discipline the merge
stage already requires, now made explicit for introspection too.

Failure model: a worker process dying surfaces as a latched shard
failure on the next submit or barrier (exactly where a thread-shard
failure would surface).  Recovery reuses the per-shard checkpoint
machinery: :meth:`ProcessShardedRunner.restore` respawns dead workers,
replays the engine snapshots into them, and re-seeds the merge stage —
see ``docs/PROCESS_RUNNER.md`` for the full lifecycle.

Load shedding is rejected at construction: adaptive admission reads
engine state the parent only sees at barriers, so a process fleet cannot
honour the controller's contract.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, BinaryIO, Callable

from repro.engine.matcher import MatcherStats
from repro.engine.snapshot import SnapshotFormatError, encode_event
from repro.events.event import Event
from repro.events.jsonsafe import desanitize, sanitize
from repro.events.schema import SchemaRegistry
from repro.language.ast_nodes import Query
from repro.language.printer import format_query
from repro.language.semantics import analyze
from repro.observability.profiling import StageProfile
from repro.observability.registry import MetricsRegistry
from repro.ranking.emission import Emission
from repro.ranking.score import Scorer
from repro.runtime.metrics import EngineMetrics, LatencyRecorder, QueryMetrics
from repro.runtime.sharded import (
    ShardedEngineRunner,
    _decode_emission,
    _Worker,
)
from repro.runtime.shedding import ShedController
from repro.runtime.sinks import CollectorSink
from repro.sanitize.locks import tracked_lock
from repro.serve.protocol import (
    _HEADER,
    HEADER_BYTES,
    ConnectionClosed,
    FrameError,
    decode_payload,
    encode_frame,
)

#: Pipe frames carry engine snapshots, not client requests; the limit is
#: a corruption guard, not a protocol negotiation.
PIPE_MAX_FRAME_BYTES = 64 * 1024 * 1024


class WorkerProcessError(RuntimeError):
    """A worker process died or reported an internal error."""


# ---------------------------------------------------------------------------
# pipe framing (shared with repro.runtime.process_worker)
# ---------------------------------------------------------------------------


def read_pipe_frame(stream: BinaryIO) -> dict[str, Any]:
    """Read one length-prefixed JSON frame from a blocking pipe stream."""
    header = _read_exactly(stream, HEADER_BYTES)
    (length,) = _HEADER.unpack(header)
    if length > PIPE_MAX_FRAME_BYTES:
        raise FrameError(
            "CEPR501",
            f"pipe frame of {length} bytes exceeds the "
            f"{PIPE_MAX_FRAME_BYTES}-byte limit",
            fatal=True,
        )
    return decode_payload(_read_exactly(stream, length))


def write_pipe_frame(stream: BinaryIO, doc: dict[str, Any]) -> None:
    """Write one frame and flush (pipes buffer; barriers need delivery)."""
    stream.write(encode_frame(doc, max_frame_bytes=PIPE_MAX_FRAME_BYTES))
    stream.flush()


def _read_exactly(stream: BinaryIO, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise ConnectionClosed("worker pipe closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# state codecs (parent <-> worker mirrors)
# ---------------------------------------------------------------------------


def encode_registry(registry: SchemaRegistry | None) -> dict | None:
    """Inverse of :func:`repro.events.schema.registry_from_dict`."""
    if registry is None:
        return None
    spec: dict[str, dict[str, Any]] = {}
    for schema in registry:
        attrs: dict[str, Any] = {}
        for attribute in schema.attributes:
            decl: dict[str, Any] = {
                "dtype": attribute.dtype,
                "required": attribute.required,
            }
            if attribute.domain is not None:
                decl["domain"] = [attribute.domain.lo, attribute.domain.hi]
            attrs[attribute.name] = decl
        spec[schema.event_type] = attrs
    return spec


def encode_recorder(recorder: LatencyRecorder) -> dict[str, Any]:
    return {
        "count": recorder.count,
        "total": recorder.total,
        "maximum": recorder.maximum,
        "samples": list(recorder._samples),
    }


def decode_recorder(state: dict[str, Any]) -> LatencyRecorder:
    recorder = LatencyRecorder()
    recorder.count = int(state["count"])
    recorder.total = float(state["total"])
    recorder.maximum = float(state["maximum"])
    recorder._samples = [float(value) for value in state["samples"]]
    return recorder


def encode_matcher_stats(stats: MatcherStats) -> dict[str, int]:
    return {
        spec.name: getattr(stats, spec.name)
        for spec in dataclasses.fields(MatcherStats)
    }


def decode_matcher_stats(state: dict[str, Any]) -> MatcherStats:
    return MatcherStats(**{key: int(value) for key, value in state.items()})


def encode_profile(profile: StageProfile | None) -> dict | None:
    if profile is None:
        return None
    return {
        name: {
            "count": timer.count,
            "total": timer.total,
            "maximum": timer.maximum,
        }
        for name, timer in profile.timers()
    }


def decode_profile(state: dict | None) -> StageProfile | None:
    if state is None:
        return None
    profile = StageProfile()
    for name, timer in profile.timers():
        row = state[name]
        timer.count = int(row["count"])
        timer.total = float(row["total"])
        timer.maximum = float(row["maximum"])
    return profile


# ---------------------------------------------------------------------------
# parent-side proxies
# ---------------------------------------------------------------------------


class _RankerMirror:
    """Ranker-shaped view over barrier-mirrored worker state."""

    __slots__ = ("_open_epochs", "scoring_errors")

    def __init__(self) -> None:
        self._open_epochs: tuple[int, ...] = ()
        self.scoring_errors = 0

    def open_epochs(self) -> tuple[int, ...]:
        return self._open_epochs


class _MatcherMirror:
    """Matcher-shaped view (stats + live counts) over mirrored state."""

    __slots__ = ("stats", "live_run_count", "pending_count")

    def __init__(self) -> None:
        self.stats = MatcherStats()
        self.live_run_count = 0
        self.pending_count = 0


class _SanitizerMirror:
    __slots__ = ("trips",)

    def __init__(self) -> None:
        self.trips: dict[str, int] = {}


class _HandleProxy:
    """RegisteredQuery-shaped handle for one (query, worker-process) pair.

    Everything the merge stage, the fleet views, and the cost accounts
    read off a shard handle — ``collector.emissions``, ``scorer``,
    ``metrics``, ``matcher`` stats, ``ranker.open_epochs()``,
    ``profile`` — is served from state mirrored at the last barrier.
    """

    def __init__(self, child: "_ChildEngine", name: str, analyzed) -> None:
        self._child = child
        self.name = name
        self.analyzed = analyzed
        self.scorer = Scorer(analyzed.rank_keys)
        self.collector = CollectorSink()
        self.metrics = QueryMetrics()
        self.matcher = _MatcherMirror()
        self.ranker = _RankerMirror()
        self.profile: StageProfile | None = None

    def explain(self) -> str:
        return self._child.explain_query(self.name)

    def _apply(self, mirror: dict[str, Any]) -> None:
        for item in mirror["emissions"]:
            self.collector.emissions.append(_decode_emission(item, self.scorer))
        counters = mirror["metrics"]
        metrics = self.metrics
        metrics.events_routed = int(counters["events_routed"])
        metrics.matches = int(counters["matches"])
        metrics.emissions = int(counters["emissions"])
        metrics.revisions = int(counters["revisions"])
        metrics.latency = decode_recorder(counters["latency"])
        self.matcher.stats = decode_matcher_stats(mirror["stats"])
        self.matcher.live_run_count = int(mirror["live_runs"])
        self.matcher.pending_count = int(mirror["pending"])
        self.ranker._open_epochs = tuple(
            int(epoch) for epoch in mirror["open_epochs"]
        )
        self.ranker.scoring_errors = int(mirror["scoring_errors"])
        self.profile = decode_profile(mirror["profile"])


class _ChildEngine:
    """Engine-shaped proxy that drives one worker process over pipes.

    Implements the slice of the :class:`~repro.runtime.engine.CEPREngine`
    surface the sharded runner touches: ``register_query`` (buffered
    until :meth:`spawn`), ``push_batch`` (one-way frames), barrier ops
    (request/reply, applying the returned mirror), ``snapshot``/
    ``restore``, and the introspection hooks (``queries``, ``metrics``,
    ``shared_stats``, ``sanitizer``, ``metrics_registry``).

    One tracked lock guards the pipe: every write, and every
    write+read request/reply pair, holds it — so frames from the
    consumer thread and the barrier thread never interleave, and replies
    always answer the request just written.
    """

    def __init__(
        self,
        registry: SchemaRegistry | None,
        preassigned: bool,
        config: dict[str, Any],
    ) -> None:
        self._registry = registry
        self.preassigned = preassigned
        self._config = config
        self._queries: dict[str, _HandleProxy] = {}
        self._texts: dict[str, str] = {}
        self._proc: subprocess.Popen | None = None
        self._lock = tracked_lock("process.pipe")
        self.pid: int | None = None
        #: mirrored EngineMetrics view (events_pushed, event-time watermark).
        self.metrics = EngineMetrics()
        self._shared: dict[str, int] = {}
        self._sanitizer_mirror: _SanitizerMirror | None = None
        #: attribute parity with CEPREngine (the exact-shed wiring writes it);
        #: the process runner rejects shedding so it stays None.
        self.shed_controller = None

    # -- registration --------------------------------------------------------

    def register_query(
        self, query: Query, name: str | None = None
    ) -> _HandleProxy:
        if self._proc is not None:
            raise RuntimeError("cannot register queries after spawn()")
        resolved = name or query.name
        if resolved is None:
            raise ValueError("process shards require a resolved query name")
        analyzed = analyze(query, self._registry)
        proxy = _HandleProxy(self, resolved, analyzed)
        self._queries[resolved] = proxy
        # Queries travel as canonical CEPR-QL text (the printer/parser
        # round-trip is golden-tested), so the child rebuilds the exact
        # same automaton the parent analysed.
        self._texts[resolved] = format_query(query)
        return proxy

    def queries(self) -> list[_HandleProxy]:
        return list(self._queries.values())

    # -- process lifecycle ---------------------------------------------------

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def spawn(self) -> None:
        """Start the worker process and initialise its engine."""
        if self._proc is not None:
            raise RuntimeError("worker already spawned")
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        self._proc = subprocess.Popen(  # san: allow-blocking
            [sys.executable, "-m", "repro.runtime.process_worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        self.pid = self._proc.pid
        init = dict(self._config)
        init["op"] = "init"
        init["preassigned"] = self.preassigned
        init["registry"] = encode_registry(self._registry)
        init["queries"] = [
            {"name": name, "text": text} for name, text in self._texts.items()
        ]
        self._request(init)

    def respawn(self) -> None:
        """Replace a dead worker with a fresh one (same queries, empty state).

        Proxy mirrors reset alongside: the caller restores a checkpoint
        next, which re-mirrors authoritative state.
        """
        self.shutdown(force=True)
        for proxy in self._queries.values():
            proxy.collector.emissions.clear()
        self.spawn()

    def shutdown(self, force: bool = False) -> None:
        """Reap the worker: graceful ``exit`` frame, else terminate."""
        proc = self._proc
        if proc is None:
            return
        self._proc = None
        if proc.poll() is None:
            if force:
                proc.terminate()
            else:
                try:
                    with self._lock:
                        write_pipe_frame(proc.stdin, {"op": "exit"})
                except (OSError, ValueError, FrameError):
                    proc.terminate()
        for stream in (proc.stdin, proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung worker
            proc.kill()
            proc.wait(timeout=10.0)

    # -- framing -------------------------------------------------------------

    def _require_proc(self) -> subprocess.Popen:
        proc = self._proc
        if proc is None:
            raise WorkerProcessError("worker process is not running")
        return proc

    def _request(self, doc: dict[str, Any]) -> dict[str, Any]:
        """One sanitized request/reply round-trip under the pipe lock."""
        with self._lock:
            proc = self._require_proc()
            payload = sanitize(doc)
            payload["safe"] = True
            try:
                write_pipe_frame(proc.stdin, payload)
                reply = read_pipe_frame(proc.stdout)
            except (OSError, ValueError, ConnectionClosed) as exc:
                raise WorkerProcessError(
                    f"worker pid={self.pid} died mid-request "
                    f"(exit code {proc.poll()!r})"
                ) from exc
        reply = desanitize(reply)
        if reply.get("op") == "error":
            self._raise_worker_error(reply)
        return reply

    def _raise_worker_error(self, reply: dict[str, Any]) -> None:
        etype = reply.get("etype", "Exception")
        detail = (
            f"worker pid={self.pid}: {etype}: {reply.get('message', '')}\n"
            f"{reply.get('traceback', '')}"
        )
        if etype == "SnapshotFormatError":
            raise SnapshotFormatError(detail)
        raise WorkerProcessError(detail)

    # -- hot path ------------------------------------------------------------

    def push_batch(self, events: list[Event]) -> list[Emission]:
        """Ship one batch as a single one-way frame (no reply).

        Emissions surface at the next barrier via the mirror, so the
        return value is always empty — the consumer thread ignores it,
        like the threaded runner ignores the engine's.
        """
        doc = {"op": "events", "events": [encode_event(e) for e in events]}
        with self._lock:
            proc = self._require_proc()
            try:
                frame = encode_frame(doc, max_frame_bytes=PIPE_MAX_FRAME_BYTES)
            except ValueError:
                # Non-finite floats in some payload: fall back to the
                # sentinel encoding; the worker desanitizes on arrival.
                frame = encode_frame(
                    {"op": "events", "safe": True, "events": sanitize(doc["events"])},
                    max_frame_bytes=PIPE_MAX_FRAME_BYTES,
                )
            try:
                proc.stdin.write(frame)
                proc.stdin.flush()
            except (OSError, ValueError) as exc:
                raise WorkerProcessError(
                    f"worker pid={self.pid} died mid-stream "
                    f"(exit code {proc.poll()!r})"
                ) from exc
        return []

    def push(self, event: Event) -> list[Emission]:
        return self.push_batch([event])

    # -- barriers ------------------------------------------------------------

    def barrier_sync(self) -> None:
        self._apply_mirror(self._request({"op": "sync"})["mirror"])

    def advance_time(self, timestamp: float) -> list[Emission]:
        reply = self._request({"op": "advance", "ts": timestamp})
        self._apply_mirror(reply["mirror"])
        return []

    def flush(self) -> list[Emission]:
        reply = self._request({"op": "flush"})
        self._apply_mirror(reply["mirror"])
        return []

    def _apply_mirror(self, mirror: dict[str, Any]) -> None:
        self.metrics.events_pushed = int(mirror["events_pushed"])
        last_ts = mirror["last_event_ts"]
        self.metrics.last_event_ts = None if last_ts is None else float(last_ts)
        self._shared = {
            key: int(value) for key, value in mirror["shared"].items()
        }
        trips = mirror["sanitizer"]
        if trips is None:
            self._sanitizer_mirror = None
        else:
            if self._sanitizer_mirror is None:
                self._sanitizer_mirror = _SanitizerMirror()
            self._sanitizer_mirror.trips = {
                key: int(value) for key, value in trips.items()
            }
        for name, query_mirror in mirror["queries"].items():
            self._queries[name]._apply(query_mirror)

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        return self._request({"op": "snapshot"})["state"]

    def restore(self, state: dict) -> None:
        reply = self._request({"op": "restore", "state": state})
        # The worker cleared its collectors before restoring; drop the
        # parent-side copies too so the merge stage re-seeds from the
        # checkpoint's tails alone.
        for proxy in self._queries.values():
            proxy.collector.emissions.clear()
        self._apply_mirror(reply["mirror"])

    # -- introspection -------------------------------------------------------

    @property
    def sanitizer(self) -> _SanitizerMirror | None:
        return self._sanitizer_mirror

    def shared_stats(self) -> dict[str, int]:
        return dict(self._shared)

    def explain_query(self, name: str) -> str:
        return str(self._request({"op": "explain", "query": name})["text"])

    def metrics_registry(self) -> MetricsRegistry:
        """Rebuild the worker engine's registry from shipped instrument state."""
        reply = self._request({"op": "registry"})
        registry = MetricsRegistry()
        for item in reply["instruments"]:
            labels = {
                str(key): str(value) for key, value in item["labels"].items()
            }
            kind = item["kind"]
            if kind == "counter":
                registry.counter(item["name"], item["help"], **labels).override(
                    float(item["value"])
                )
            elif kind == "gauge":
                registry.gauge(
                    item["name"], item["help"], agg=item["agg"], **labels
                ).set(float(item["value"]))
            else:
                histogram = registry.histogram(
                    item["name"], item["help"], **labels
                )
                histogram.recorder = decode_recorder(item["recorder"])
        return registry


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


class _ProcessWorker(_Worker):
    """One shard backed by a worker process (engine is a :class:`_ChildEngine`)."""

    def start(self) -> None:
        self.engine.spawn()
        super().start()

    def _sync_engine(self) -> None:
        # Round-trip the barrier so the coordinator reads a fresh mirror.
        self.engine.barrier_sync()

    def close(self, force: bool = False) -> None:
        self.engine.shutdown(force=force)


class ProcessShardedRunner(ShardedEngineRunner):
    """Partition-parallel fleet with one OS process per shard.

    Same construction, lifecycle, placement rules, merge semantics, and
    checkpoint format as :class:`~repro.runtime.sharded.
    ShardedEngineRunner` — the differential suite asserts byte-identical
    merged output — but each shard engine lives in its own interpreter,
    so K shards use K cores.  See the module docstring for the transport
    and the consistency/failure model.
    """

    def __init__(
        self,
        shards: int = 4,
        registry: SchemaRegistry | None = None,
        strict_schema: bool = False,
        enable_pruning: bool = True,
        strict_time: bool = False,
        lenient_errors: bool = False,
        max_lateness: float | None = None,
        max_queue: int = 10_000,
        batch_size: int = 256,
        on_emission: Callable[[Emission], None] | None = None,
        sanitize: bool | None = None,
        shed_policy: str = "off",
        latency_target: float | None = None,
        shed_controller: ShedController | None = None,
        compiled: bool = True,
    ) -> None:
        if shed_policy != "off" or shed_controller is not None:
            raise ValueError(
                "load shedding is not supported on the process runner: "
                "adaptive admission reads engine state the parent only "
                "mirrors at barriers (use the threaded sharded runner)"
            )
        super().__init__(
            shards=shards,
            registry=registry,
            strict_schema=strict_schema,
            enable_pruning=enable_pruning,
            strict_time=strict_time,
            lenient_errors=lenient_errors,
            max_lateness=max_lateness,
            max_queue=max_queue,
            batch_size=batch_size,
            on_emission=on_emission,
            sanitize=sanitize,
            compiled=compiled,
        )

    def _new_engine(self, preassigned: bool) -> _ChildEngine:
        return _ChildEngine(
            registry=self.registry,
            preassigned=preassigned,
            config={
                "strict_schema": self.strict_schema,
                "enable_pruning": self.enable_pruning,
                "strict_time": False if preassigned else self.strict_time,
                "lenient_errors": self.lenient_errors,
                "max_lateness": None if preassigned else self.max_lateness,
                "sanitize": self.sanitize,
                "compiled": self.compiled,
            },
        )

    def _make_worker(self, engine: _ChildEngine) -> _ProcessWorker:
        return _ProcessWorker(engine, self.max_queue, self.batch_size)

    def worker_pids(self) -> list[int | None]:
        """Current worker-process pids, in deterministic worker order."""
        return [worker.engine.pid for worker in self._workers]

    def restore(self, state: dict) -> None:
        """Restore a fleet checkpoint, respawning any dead workers first.

        Extends the base restore with crash recovery: a worker whose
        process died (latched shard failure) is replaced by a fresh
        process before the snapshot replays into it, and stale events
        queued behind the crash are discarded — they are part of the
        checkpointed-or-lost past, and replaying them after the restored
        cut would double-count.
        """
        for worker in self._workers:
            if worker.engine.alive() and worker.failure is None:
                continue
            self._drain_stale_events(worker)
            if not worker.engine.alive():
                worker.engine.respawn()
            worker.failure = None
        super().restore(state)

    @staticmethod
    def _drain_stale_events(worker: _Worker) -> None:
        import queue as queue_module

        while True:
            try:
                item = worker.queue.get_nowait()
            except queue_module.Empty:
                return
            if item[0] != "event":
                # Preserve barrier/stop ops; their acks must still fire.
                worker.queue.put(item)
                return
