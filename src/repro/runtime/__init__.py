"""Runtime glue: the engine facade, query handles, routing, sinks, metrics,
and the live monitor.

Execution backends live behind the unified Runner API: build any of
embedded / threaded / sharded / process with
:func:`~repro.runtime.runner.create_runner` and drive it through the
:class:`~repro.runtime.runner.Runner` protocol.  Direct construction of
the runner classes is deprecated (each constructor warns outside the
factory)."""

from repro.runtime.concurrent import ThreadedEngineRunner
from repro.runtime.engine import CEPREngine
from repro.runtime.metrics import EngineMetrics, LatencyRecorder, QueryMetrics
from repro.runtime.monitor import Monitor
from repro.runtime.process import ProcessShardedRunner
from repro.runtime.query import RegisteredQuery
from repro.runtime.router import EventRouter
from repro.runtime.runner import (
    EmbeddedRunner,
    Runner,
    RunnerConfig,
    create_runner,
)
from repro.runtime.serialize import emission_to_json, emission_to_line, match_to_json
from repro.runtime.sharded import ShardedEngineRunner, ShardedQuery
from repro.runtime.sinks import (
    CallbackSink,
    CollectorSink,
    JSONLSink,
    PrintSink,
    ResultSink,
)

__all__ = [
    "CEPREngine",
    "CallbackSink",
    "CollectorSink",
    "EmbeddedRunner",
    "EngineMetrics",
    "EventRouter",
    "JSONLSink",
    "LatencyRecorder",
    "Monitor",
    "PrintSink",
    "ProcessShardedRunner",
    "QueryMetrics",
    "RegisteredQuery",
    "ResultSink",
    "Runner",
    "RunnerConfig",
    "ShardedEngineRunner",
    "ShardedQuery",
    "ThreadedEngineRunner",
    "create_runner",
    "emission_to_json",
    "emission_to_line",
    "match_to_json",
]
