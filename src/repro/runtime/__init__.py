"""Runtime glue: the engine facade, query handles, routing, sinks, metrics,
and the live monitor."""

from repro.runtime.concurrent import ThreadedEngineRunner
from repro.runtime.engine import CEPREngine
from repro.runtime.metrics import EngineMetrics, LatencyRecorder, QueryMetrics
from repro.runtime.monitor import Monitor
from repro.runtime.query import RegisteredQuery
from repro.runtime.router import EventRouter
from repro.runtime.serialize import emission_to_json, emission_to_line, match_to_json
from repro.runtime.sharded import ShardedEngineRunner, ShardedQuery
from repro.runtime.sinks import (
    CallbackSink,
    CollectorSink,
    JSONLSink,
    PrintSink,
    ResultSink,
)

__all__ = [
    "CEPREngine",
    "CallbackSink",
    "CollectorSink",
    "EngineMetrics",
    "EventRouter",
    "JSONLSink",
    "LatencyRecorder",
    "Monitor",
    "PrintSink",
    "QueryMetrics",
    "RegisteredQuery",
    "ResultSink",
    "ShardedEngineRunner",
    "ShardedQuery",
    "ThreadedEngineRunner",
    "emission_to_json",
    "emission_to_line",
    "match_to_json",
]
