"""CEPR — ranking support for matched patterns over complex event streams.

A from-scratch reproduction of the CEPR system (Gu, Wang, Zaniolo,
ICDE 2016 demo): a complex-event-processing engine whose query language
makes ranking of matched patterns a first-class construct, and whose
execution integrates top-k maintenance with pattern matching instead of
ranking after the fact.

Quickstart::

    from repro import CEPREngine, Event

    engine = CEPREngine()
    query = engine.register_query('''
        PATTERN SEQ(Buy b, Sell s)
        WHERE b.symbol == s.symbol AND s.price > b.price
        WITHIN 50 EVENTS
        RANK BY s.price - b.price DESC
        LIMIT 3
    ''')
    engine.push(Event("Buy", 1.0, symbol="ACME", price=10.0))
    engine.push(Event("Sell", 2.0, symbol="ACME", price=14.0))
    engine.flush()
    for match in query.final_ranking():
        print(match.describe())
"""

from repro.engine.match import Match
from repro.events.event import Event
from repro.events.schema import (
    AttributeSpec,
    Domain,
    EventSchema,
    SchemaRegistry,
)
from repro.events.stream import EventStream, merge_streams
from repro.language.errors import (
    CEPRError,
    CEPRSemanticError,
    CEPRSyntaxError,
    EvaluationError,
)
from repro.language.parser import parse_query
from repro.language.printer import format_query
from repro.ranking.emission import Emission, EmissionKind
from repro.runtime.engine import CEPREngine
from repro.runtime.monitor import Monitor
from repro.runtime.query import RegisteredQuery
from repro.runtime.sharded import ShardedEngineRunner
from repro.runtime.sinks import (
    CallbackSink,
    CollectorSink,
    JSONLSink,
    PrintSink,
    Subscription,
)

__version__ = "1.0.0"

__all__ = [
    "AttributeSpec",
    "CEPREngine",
    "CEPRError",
    "CEPRSemanticError",
    "CEPRSyntaxError",
    "CallbackSink",
    "CollectorSink",
    "Domain",
    "Emission",
    "EmissionKind",
    "Event",
    "EventSchema",
    "EventStream",
    "EvaluationError",
    "JSONLSink",
    "Match",
    "Monitor",
    "PrintSink",
    "RegisteredQuery",
    "SchemaRegistry",
    "ShardedEngineRunner",
    "Subscription",
    "__version__",
    "format_query",
    "merge_streams",
    "parse_query",
]
