"""Workload generator base utilities.

Every workload is deterministic given its seed: the generators own a
private :class:`random.Random` so nothing disturbs (or is disturbed by)
global RNG state, and timestamps advance at a configurable mean rate with
optional jitter — always non-decreasing, as the engine's windows and the
pruning soundness argument assume.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.events.stream import EventStream


class Workload:
    """Base class for synthetic event generators.

    Parameters
    ----------
    seed:
        RNG seed; equal seeds give equal streams.
    rate:
        Mean events per second of stream time (timestamps advance by
        ``1/rate`` on average).
    jitter:
        Fractional jitter on inter-arrival gaps, in ``[0, 1)``.
    """

    def __init__(self, seed: int = 0, rate: float = 100.0, jitter: float = 0.2) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.seed = seed
        self.rate = rate
        self.jitter = jitter
        self.rng = random.Random(seed)
        self._clock = 0.0

    def next_timestamp(self) -> float:
        """Advance and return the stream clock (non-decreasing)."""
        gap = 1.0 / self.rate
        if self.jitter:
            gap *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        self._clock += gap
        return self._clock

    def events(self, count: int) -> Iterator[Event]:
        """Generate ``count`` events; subclasses implement :meth:`next_event`."""
        for _ in range(count):
            yield self.next_event()

    def stream(self, count: int) -> EventStream:
        return EventStream(self.events(count))

    def next_event(self) -> Event:
        raise NotImplementedError

    def registry(self) -> SchemaRegistry:
        """Schemas (with domains) for this workload's event types."""
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind to the initial deterministic state."""
        self.rng = random.Random(self.seed)
        self._clock = 0.0
