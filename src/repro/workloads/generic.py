"""Parameterised generic workload for controlled experiments.

Events are drawn uniformly from a type alphabet (``A``, ``B``, ``C``, ...)
with a numeric ``value`` attribute in a declared domain and a ``group``
attribute for partitioning.  The knobs map directly onto the benchmark
sweeps: ``alphabet_size`` controls per-type selectivity, ``value_range``
the scoring spread, ``groups`` the partition fan-out.
"""

from __future__ import annotations

import string

from repro.events.event import Event
from repro.events.schema import AttributeSpec, Domain, EventSchema, SchemaRegistry
from repro.workloads.base import Workload


def type_alphabet(size: int) -> tuple[str, ...]:
    """The first ``size`` single-letter event type names (max 26)."""
    if not 1 <= size <= 26:
        raise ValueError(f"alphabet size must be within [1, 26], got {size}")
    return tuple(string.ascii_uppercase[:size])


class GenericWorkload(Workload):
    """Uniform events over a type alphabet with numeric payloads."""

    def __init__(
        self,
        seed: int = 0,
        alphabet_size: int = 4,
        value_range: tuple[float, float] = (0.0, 100.0),
        groups: int = 1,
        rate: float = 1000.0,
    ) -> None:
        super().__init__(seed=seed, rate=rate)
        lo, hi = value_range
        if lo >= hi:
            raise ValueError(f"invalid value range {value_range}")
        if groups <= 0:
            raise ValueError("groups must be positive")
        self.types = type_alphabet(alphabet_size)
        self.value_range = value_range
        self.groups = groups

    def next_event(self) -> Event:
        lo, hi = self.value_range
        return Event(
            self.rng.choice(self.types),
            self.next_timestamp(),
            value=round(self.rng.uniform(lo, hi), 3),
            group=self.rng.randrange(self.groups),
        )

    def registry(self) -> SchemaRegistry:
        lo, hi = self.value_range
        schemas = [
            EventSchema(
                event_type,
                (
                    AttributeSpec("value", "float", Domain(lo, hi)),
                    AttributeSpec("group", "int", Domain(0, self.groups - 1)),
                ),
            )
            for event_type in self.types
        ]
        return SchemaRegistry(schemas)
