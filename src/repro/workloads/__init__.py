"""Seeded synthetic workload generators for the demo domains and benches."""

from repro.workloads.base import Workload
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.generic import GenericWorkload, type_alphabet
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import DEFAULT_SYMBOLS, StockWorkload
from repro.workloads.traffic import TrafficWorkload

__all__ = [
    "ClickstreamWorkload",
    "DEFAULT_SYMBOLS",
    "GenericWorkload",
    "StockWorkload",
    "TrafficWorkload",
    "VitalsWorkload",
    "Workload",
    "type_alphabet",
]
