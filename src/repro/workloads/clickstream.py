"""E-commerce clickstream workload: sessions, carts, and abandonment.

Users generate ``PageView`` → ``AddToCart`` → (``Purchase`` | nothing)
funnels; a configurable fraction of carts are abandoned.  This is the
canonical use case for *trailing negation* — "cart added to but **not**
purchased within the window" — ranked by cart value so the win-back
campaign targets the most valuable abandonments first.
"""

from __future__ import annotations

from repro.events.event import Event
from repro.events.schema import AttributeSpec, Domain, EventSchema, SchemaRegistry
from repro.workloads.base import Workload

_CATEGORIES = ("books", "audio", "garden", "games", "grocery")


class ClickstreamWorkload(Workload):
    """Session funnels for a population of users.

    Parameters
    ----------
    users:
        Number of distinct users cycling through funnels.
    abandon_rate:
        Probability that a cart is never purchased.
    funnel_gap:
        Mean number of interleaved events between a user's funnel steps
        (drawn per-user; models browsing between actions).
    """

    def __init__(
        self,
        seed: int = 0,
        users: int = 20,
        abandon_rate: float = 0.3,
        funnel_gap: int = 3,
        rate: float = 100.0,
    ) -> None:
        super().__init__(seed=seed, rate=rate)
        if users <= 0:
            raise ValueError("need at least one user")
        if not 0 <= abandon_rate <= 1:
            raise ValueError("abandon_rate must be within [0, 1]")
        self.users = users
        self.abandon_rate = abandon_rate
        self.funnel_gap = funnel_gap
        # per-user funnel state: None (browsing) or pending action queue
        self._pending: dict[int, list[tuple[str, float]]] = {}
        self._cooldown: dict[int, int] = {}

    def next_event(self) -> Event:
        user = self.rng.randrange(self.users)
        timestamp = self.next_timestamp()

        queue = self._pending.get(user)
        if queue and self._cooldown.get(user, 0) <= 0:
            event_type, value = queue.pop(0)
            if not queue:
                del self._pending[user]
            else:
                self._cooldown[user] = self.rng.randint(1, 2 * self.funnel_gap)
            return Event(
                event_type,
                timestamp,
                user=user,
                value=round(value, 2),
                category=self.rng.choice(_CATEGORIES),
            )
        if user in self._cooldown:
            self._cooldown[user] -= 1

        # maybe start a new funnel
        if user not in self._pending and self.rng.random() < 0.25:
            cart_value = self.rng.uniform(5.0, 500.0)
            steps = [("AddToCart", cart_value)]
            if self.rng.random() >= self.abandon_rate:
                steps.append(("Purchase", cart_value))
            self._pending[user] = steps
            self._cooldown[user] = self.rng.randint(1, 2 * self.funnel_gap)

        return Event(
            "PageView",
            timestamp,
            user=user,
            value=0.0,
            category=self.rng.choice(_CATEGORIES),
        )

    def registry(self) -> SchemaRegistry:
        attrs = (
            AttributeSpec("user", "int", Domain(0, self.users - 1)),
            AttributeSpec("value", "float", Domain(0.0, 500.0)),
            AttributeSpec("category", "str"),
        )
        return SchemaRegistry(
            [
                EventSchema("PageView", attrs),
                EventSchema("AddToCart", attrs),
                EventSchema("Purchase", attrs),
            ]
        )

    def reset(self) -> None:
        super().reset()
        self._pending = {}
        self._cooldown = {}
