"""Urban-transportation workload: vehicle speed reports with incidents.

Vehicles stream ``SpeedReport`` events per road segment; occasionally a
segment develops an *incident* that drags speeds down for a while, then
clears with a ``Clear`` event.  Congestion-onset patterns — a sequence of
decreasing speed readings on one segment, ranked by how sharp the drop is —
exercise partitioning, Kleene iteration predicates, and negation
("no Clear between the slowdown and the jam").
"""

from __future__ import annotations

from repro.events.event import Event
from repro.events.schema import AttributeSpec, Domain, EventSchema, SchemaRegistry
from repro.workloads.base import Workload


class TrafficWorkload(Workload):
    """Speed reports across road segments, with incident injection."""

    def __init__(
        self,
        seed: int = 0,
        segments: int = 10,
        vehicles: int = 40,
        incident_rate: float = 0.005,
        incident_length: int = 30,
        free_flow_speed: float = 90.0,
        rate: float = 200.0,
    ) -> None:
        super().__init__(seed=seed, rate=rate)
        if segments <= 0 or vehicles <= 0:
            raise ValueError("segments and vehicles must be positive")
        self.segments = segments
        self.vehicles = vehicles
        self.incident_rate = incident_rate
        self.incident_length = incident_length
        self.free_flow_speed = free_flow_speed
        self._incident_remaining = [0] * segments

    def next_event(self) -> Event:
        segment = self.rng.randrange(self.segments)

        if self._incident_remaining[segment] == 0 and self.rng.random() < self.incident_rate:
            self._incident_remaining[segment] = self.incident_length

        timestamp = self.next_timestamp()
        if self._incident_remaining[segment] > 0:
            self._incident_remaining[segment] -= 1
            if self._incident_remaining[segment] == 0:
                return Event("Clear", timestamp, segment=segment)
            # Congested: speed decays as the incident progresses.
            progress = 1.0 - self._incident_remaining[segment] / self.incident_length
            mean_speed = self.free_flow_speed * (1.0 - 0.8 * progress)
        else:
            mean_speed = self.free_flow_speed

        speed = max(1.0, min(130.0, self.rng.gauss(mean_speed, 8.0)))
        return Event(
            "SpeedReport",
            timestamp,
            segment=segment,
            vehicle=self.rng.randrange(self.vehicles),
            speed=round(speed, 1),
        )

    def registry(self) -> SchemaRegistry:
        segment_domain = Domain(0, self.segments - 1)
        return SchemaRegistry(
            [
                EventSchema(
                    "SpeedReport",
                    (
                        AttributeSpec("segment", "int", segment_domain),
                        AttributeSpec("vehicle", "int", Domain(0, self.vehicles - 1)),
                        AttributeSpec("speed", "float", Domain(1.0, 130.0)),
                    ),
                ),
                EventSchema(
                    "Clear",
                    (AttributeSpec("segment", "int", segment_domain),),
                ),
            ]
        )

    def reset(self) -> None:
        super().reset()
        self._incident_remaining = [0] * self.segments
