"""Stock-market workload: the paper's canonical motivating domain.

Per-symbol prices follow a clamped multiplicative random walk; each event
is a ``Buy`` or ``Sell`` order (or, optionally, a neutral ``Tick``) carrying
``symbol``, ``price``, and ``volume``.  The classic CEPR demo query —
"rank Buy→Sell pairs on the same symbol by profit" — finds its raw
material here.

Price domains are declared on the schemas, which is what lets the pruning
optimiser bound ``s.price - b.price`` for partial matches.
"""

from __future__ import annotations

from repro.events.event import Event
from repro.events.schema import AttributeSpec, Domain, EventSchema, SchemaRegistry
from repro.workloads.base import Workload

DEFAULT_SYMBOLS = ("ACME", "GLOBO", "INITECH", "UMBRELLA", "HOOLI", "WAYNE")


class StockWorkload(Workload):
    """Buy/Sell/Tick order flow over a set of symbols.

    Parameters
    ----------
    symbols:
        Ticker symbols; each keeps its own price walk.
    price_floor / price_cap:
        Hard clamps on the walk; also the declared price domain.
    volatility:
        Per-event relative price change scale.
    tick_fraction:
        Fraction of events that are neutral ``Tick`` updates rather than
        Buy/Sell orders.
    """

    def __init__(
        self,
        seed: int = 0,
        symbols: tuple[str, ...] = DEFAULT_SYMBOLS,
        price_floor: float = 1.0,
        price_cap: float = 500.0,
        volatility: float = 0.01,
        tick_fraction: float = 0.0,
        rate: float = 100.0,
    ) -> None:
        super().__init__(seed=seed, rate=rate)
        if not symbols:
            raise ValueError("at least one symbol is required")
        if price_floor <= 0 or price_floor >= price_cap:
            raise ValueError("need 0 < price_floor < price_cap")
        self.symbols = symbols
        self.price_floor = price_floor
        self.price_cap = price_cap
        self.volatility = volatility
        self.tick_fraction = tick_fraction
        self._prices = {
            symbol: self.rng.uniform(price_floor * 10, price_cap / 2)
            for symbol in symbols
        }

    def next_event(self) -> Event:
        symbol = self.rng.choice(self.symbols)
        price = self._prices[symbol]
        price *= 1.0 + self.rng.gauss(0.0, self.volatility)
        price = max(self.price_floor, min(self.price_cap, price))
        self._prices[symbol] = price

        timestamp = self.next_timestamp()
        volume = self.rng.randint(1, 1000)
        if self.tick_fraction and self.rng.random() < self.tick_fraction:
            return Event("Tick", timestamp, symbol=symbol, price=round(price, 2))
        event_type = "Buy" if self.rng.random() < 0.5 else "Sell"
        return Event(
            event_type,
            timestamp,
            symbol=symbol,
            price=round(price, 2),
            volume=volume,
        )

    def registry(self) -> SchemaRegistry:
        price_domain = Domain(self.price_floor, self.price_cap)
        volume_domain = Domain(1, 1000)
        order_attrs = (
            AttributeSpec("symbol", "str"),
            AttributeSpec("price", "float", price_domain),
            AttributeSpec("volume", "int", volume_domain),
        )
        return SchemaRegistry(
            [
                EventSchema("Buy", order_attrs),
                EventSchema("Sell", order_attrs),
                EventSchema(
                    "Tick",
                    (
                        AttributeSpec("symbol", "str"),
                        AttributeSpec("price", "float", price_domain),
                    ),
                ),
            ]
        )

    def reset(self) -> None:
        super().reset()
        self._prices = {
            symbol: self.rng.uniform(self.price_floor * 10, self.price_cap / 2)
            for symbol in self.symbols
        }
