"""Health-monitoring workload: patient vital signs with injected anomalies.

Each patient produces interleaved ``HeartRate``, ``Temperature``, and
``OxygenSat`` readings around a healthy baseline.  With probability
``anomaly_rate`` a patient enters an *episode*: a run of consecutive
elevated readings (tachycardia + fever ramp) lasting ``episode_length``
readings.  Episodes are exactly what Kleene queries such as

    PATTERN SEQ(HeartRate h, Temperature+ ts)
    WHERE ts.value > prev(ts.value) ...
    RANK BY max(ts.value) DESC

are meant to surface, and ranking them by severity mirrors the demo
paper's health-care scenario.
"""

from __future__ import annotations

from repro.events.event import Event
from repro.events.schema import AttributeSpec, Domain, EventSchema, SchemaRegistry
from repro.workloads.base import Workload

_VITALS = ("HeartRate", "Temperature", "OxygenSat")

_BASELINES = {
    "HeartRate": (72.0, 6.0),  # mean, sigma
    "Temperature": (36.8, 0.2),
    "OxygenSat": (97.5, 0.8),
}

_DOMAINS = {
    "HeartRate": Domain(30.0, 220.0),
    "Temperature": Domain(34.0, 43.0),
    "OxygenSat": Domain(60.0, 100.0),
}

_EPISODE_BOOST = {
    "HeartRate": 45.0,
    "Temperature": 2.2,
    "OxygenSat": -8.0,
}


class VitalsWorkload(Workload):
    """Interleaved vital-sign readings for a panel of patients."""

    def __init__(
        self,
        seed: int = 0,
        patients: int = 8,
        anomaly_rate: float = 0.02,
        episode_length: int = 6,
        rate: float = 50.0,
    ) -> None:
        super().__init__(seed=seed, rate=rate)
        if patients <= 0:
            raise ValueError("need at least one patient")
        if not 0 <= anomaly_rate <= 1:
            raise ValueError("anomaly_rate must be within [0, 1]")
        self.patients = patients
        self.anomaly_rate = anomaly_rate
        self.episode_length = episode_length
        # remaining episode readings per patient (0 = healthy).
        self._episodes = [0] * patients
        self._episode_progress = [0] * patients

    def next_event(self) -> Event:
        patient = self.rng.randrange(self.patients)
        if self._episodes[patient] == 0 and self.rng.random() < self.anomaly_rate:
            self._episodes[patient] = self.episode_length
            self._episode_progress[patient] = 0

        vital = self.rng.choice(_VITALS)
        mean, sigma = _BASELINES[vital]
        value = self.rng.gauss(mean, sigma)

        in_episode = self._episodes[patient] > 0
        if in_episode:
            # Severity ramps up through the episode, so longer Kleene
            # bindings really are "worse" — giving the severity ranking a
            # meaningful gradient.
            progress = self._episode_progress[patient] / max(1, self.episode_length - 1)
            value += _EPISODE_BOOST[vital] * (0.4 + 0.6 * progress)
            self._episodes[patient] -= 1
            self._episode_progress[patient] += 1

        domain = _DOMAINS[vital]
        value = max(domain.lo, min(domain.hi, value))
        return Event(
            vital,
            self.next_timestamp(),
            patient=patient,
            value=round(value, 2),
            episode=in_episode,
        )

    def registry(self) -> SchemaRegistry:
        schemas = []
        for vital in _VITALS:
            schemas.append(
                EventSchema(
                    vital,
                    (
                        AttributeSpec("patient", "int", Domain(0, self.patients - 1)),
                        AttributeSpec("value", "float", _DOMAINS[vital]),
                        AttributeSpec("episode", "bool", required=False),
                    ),
                )
            )
        return SchemaRegistry(schemas)

    def reset(self) -> None:
        super().reset()
        self._episodes = [0] * self.patients
        self._episode_progress = [0] * self.patients
